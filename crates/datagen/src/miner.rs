//! The query miner: template-driven discovery of valid, non-empty queries.
//!
//! The paper mines its benchmark workload by instantiating query templates
//! (with placeholders for edge labels) and keeping only the instantiations
//! that are valid and non-empty over the dataset — 218,014 snowflakes and
//! 18,743 diamonds over YAGO2s, from which the ten benchmark queries were
//! selected. This module reproduces that machinery: it samples label
//! assignments, prunes impossible combinations with the catalog's 2-gram
//! statistics, and verifies non-emptiness with a budgeted backtracking search
//! that finds one witness embedding.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use std::collections::HashSet;

use wireframe_graph::{End, Graph, NodeId, PredId};
use wireframe_query::canonical::{signature, QuerySignature};
use wireframe_query::templates::{diamond, snowflake};
use wireframe_query::{ConjunctiveQuery, Term};

/// Outcome of mining one template instantiation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MineOutcome {
    /// A witness embedding was found: the query is valid and non-empty.
    NonEmpty,
    /// The search space was exhausted: the query is empty.
    Empty,
    /// The search budget ran out before a verdict; the miner skips such queries.
    BudgetExhausted,
}

/// Statistics of one mining run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinerStats {
    /// Label combinations sampled.
    pub attempts: usize,
    /// Combinations rejected by the 2-gram pre-check without searching.
    pub pruned_by_stats: usize,
    /// Combinations skipped because a structurally equivalent query (same
    /// canonical signature) was already mined.
    pub duplicates: usize,
    /// Combinations verified non-empty (mined).
    pub mined: usize,
    /// Combinations verified empty.
    pub empty: usize,
    /// Combinations abandoned because the search budget ran out.
    pub budget_exhausted: usize,
}

/// The template-based query miner.
#[derive(Debug)]
pub struct QueryMiner<'g> {
    graph: &'g Graph,
    rng: SmallRng,
    /// Maximum candidate-edge visits per non-emptiness check.
    pub search_budget: usize,
    /// Canonical signatures of the queries mined so far (for deduplication).
    seen: HashSet<QuerySignature>,
}

impl<'g> QueryMiner<'g> {
    /// Creates a miner over `graph` with a deterministic seed.
    pub fn new(graph: &'g Graph, seed: u64) -> Self {
        QueryMiner {
            graph,
            rng: SmallRng::seed_from_u64(seed),
            search_budget: 200_000,
            seen: HashSet::new(),
        }
    }

    /// Labels of the predicates that have at least one edge.
    fn candidate_labels(&self) -> Vec<&'g str> {
        self.graph
            .dictionary()
            .predicates()
            .filter(|(p, _)| self.graph.predicate_cardinality(*p) > 0)
            .map(|(_, label)| label)
            .collect()
    }

    /// Mines up to `max` non-empty snowflake queries using at most `attempts`
    /// sampled label assignments.
    pub fn mine_snowflakes(
        &mut self,
        attempts: usize,
        max: usize,
    ) -> (Vec<ConjunctiveQuery>, MinerStats) {
        let labels = self.candidate_labels();
        let mut out = Vec::new();
        let mut stats = MinerStats::default();
        if labels.is_empty() {
            return (out, stats);
        }
        for _ in 0..attempts {
            if out.len() >= max {
                break;
            }
            stats.attempts += 1;
            let pick: [&str; 9] =
                std::array::from_fn(|_| labels[self.rng.gen_range(0..labels.len())]);
            let Ok(query) = snowflake(self.graph.dictionary(), &pick) else {
                continue;
            };
            self.consider(query, &mut out, &mut stats);
        }
        (out, stats)
    }

    /// Mines up to `max` non-empty diamond queries using at most `attempts`
    /// sampled label assignments.
    pub fn mine_diamonds(
        &mut self,
        attempts: usize,
        max: usize,
    ) -> (Vec<ConjunctiveQuery>, MinerStats) {
        let labels = self.candidate_labels();
        let mut out = Vec::new();
        let mut stats = MinerStats::default();
        if labels.is_empty() {
            return (out, stats);
        }
        for _ in 0..attempts {
            if out.len() >= max {
                break;
            }
            stats.attempts += 1;
            let pick: [&str; 4] =
                std::array::from_fn(|_| labels[self.rng.gen_range(0..labels.len())]);
            let Ok(query) = diamond(self.graph.dictionary(), &pick) else {
                continue;
            };
            self.consider(query, &mut out, &mut stats);
        }
        (out, stats)
    }

    fn consider(
        &mut self,
        query: ConjunctiveQuery,
        out: &mut Vec<ConjunctiveQuery>,
        stats: &mut MinerStats,
    ) {
        if !self.passes_stats_precheck(&query) {
            stats.pruned_by_stats += 1;
            return;
        }
        let sig = signature(&query);
        if self.seen.contains(&sig) {
            stats.duplicates += 1;
            return;
        }
        match self.check_non_empty(&query) {
            MineOutcome::NonEmpty => {
                stats.mined += 1;
                self.seen.insert(sig);
                out.push(query);
            }
            MineOutcome::Empty => stats.empty += 1,
            MineOutcome::BudgetExhausted => stats.budget_exhausted += 1,
        }
    }

    /// Necessary condition for non-emptiness: every pair of patterns sharing a
    /// variable must have a non-zero 2-gram join cardinality.
    pub fn passes_stats_precheck(&self, query: &ConjunctiveQuery) -> bool {
        let patterns = query.patterns();
        for (i, a) in patterns.iter().enumerate() {
            if self.graph.predicate_cardinality(a.predicate) == 0 {
                return false;
            }
            for b in patterns.iter().skip(i + 1) {
                for (ta, ea) in [(a.subject, End::Subject), (a.object, End::Object)] {
                    for (tb, eb) in [(b.subject, End::Subject), (b.object, End::Object)] {
                        let (Some(va), Some(vb)) = (ta.as_var(), tb.as_var()) else {
                            continue;
                        };
                        if va != vb {
                            continue;
                        }
                        let s = self
                            .graph
                            .catalog()
                            .bigram(a.predicate, ea, b.predicate, eb);
                        if s.join_cardinality == 0 {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    /// Exact (budgeted) non-emptiness check: a depth-first search for one
    /// witness embedding.
    pub fn check_non_empty(&self, query: &ConjunctiveQuery) -> MineOutcome {
        let order = cheap_connected_order(self.graph, query);
        let mut binding: Vec<Option<NodeId>> = vec![None; query.num_vars()];
        let mut budget = self.search_budget;
        match self.dfs(query, &order, 0, &mut binding, &mut budget) {
            Some(true) => MineOutcome::NonEmpty,
            Some(false) => MineOutcome::Empty,
            None => MineOutcome::BudgetExhausted,
        }
    }

    /// Returns `Some(true)` if an embedding exists, `Some(false)` if provably
    /// none exists, `None` if the budget ran out.
    fn dfs(
        &self,
        query: &ConjunctiveQuery,
        order: &[usize],
        depth: usize,
        binding: &mut Vec<Option<NodeId>>,
        budget: &mut usize,
    ) -> Option<bool> {
        if depth == order.len() {
            return Some(true);
        }
        let pattern = query.patterns()[order[depth]];
        let p = pattern.predicate;
        let s_val = value(pattern.subject, binding);
        let o_val = value(pattern.object, binding);
        let candidates: Vec<(NodeId, NodeId)> = match (s_val, o_val) {
            (Some(s), Some(o)) => {
                if self.graph.has_triple(s, p, o) {
                    vec![(s, o)]
                } else {
                    Vec::new()
                }
            }
            (Some(s), None) => self
                .graph
                .objects_of(p, s)
                .iter()
                .map(|&o| (s, o))
                .collect(),
            (None, Some(o)) => self
                .graph
                .subjects_of(p, o)
                .iter()
                .map(|&s| (s, o))
                .collect(),
            (None, None) => self.graph.pairs(p).into_owned(),
        };
        for (s, o) in candidates {
            if *budget == 0 {
                return None;
            }
            *budget -= 1;
            let saved = binding.clone();
            if bind(binding, pattern.subject, s) && bind(binding, pattern.object, o) {
                match self.dfs(query, order, depth + 1, binding, budget) {
                    Some(true) => return Some(true),
                    Some(false) => {}
                    None => return None,
                }
            }
            *binding = saved;
        }
        Some(false)
    }
}

fn value(term: Term, binding: &[Option<NodeId>]) -> Option<NodeId> {
    match term {
        Term::Const(c) => Some(c),
        Term::Var(v) => binding[v.index()],
    }
}

fn bind(binding: &mut [Option<NodeId>], term: Term, val: NodeId) -> bool {
    match term {
        Term::Const(c) => c == val,
        Term::Var(v) => match binding[v.index()] {
            None => {
                binding[v.index()] = Some(val);
                true
            }
            Some(existing) => existing == val,
        },
    }
}

/// Cheapest-predicate-first connected pattern order (shared with the
/// exploration baseline's strategy, re-implemented here to keep this crate
/// independent of the engines).
#[allow(clippy::needless_range_loop)] // `i` is the pattern id being chosen
fn cheap_connected_order(graph: &Graph, query: &ConjunctiveQuery) -> Vec<usize> {
    let n = query.num_patterns();
    let card = |p: PredId| graph.predicate_cardinality(p);
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut used = vec![false; n];
    for _ in 0..n {
        let mut best: Option<usize> = None;
        for i in 0..n {
            if used[i] {
                continue;
            }
            let connected = order.is_empty()
                || query.patterns()[i].variables().any(|v| {
                    order
                        .iter()
                        .any(|&j: &usize| query.patterns()[j].mentions(v))
                });
            if !connected {
                continue;
            }
            let better = match best {
                None => true,
                Some(b) => {
                    card(query.patterns()[i].predicate) < card(query.patterns()[b].predicate)
                }
            };
            if better {
                best = Some(i);
            }
        }
        let pick = best.unwrap_or_else(|| (0..n).find(|&i| !used[i]).expect("unused pattern"));
        used[pick] = true;
        order.push(pick);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::table1_queries;
    use crate::yago::{generate, YagoConfig};

    #[test]
    fn table1_queries_are_verified_non_empty() {
        let g = generate(&YagoConfig::tiny());
        let miner = QueryMiner::new(&g, 1);
        for bq in table1_queries(&g).unwrap() {
            assert!(
                miner.passes_stats_precheck(&bq.query),
                "{} fails the 2-gram pre-check",
                bq.name
            );
            assert_eq!(
                miner.check_non_empty(&bq.query),
                MineOutcome::NonEmpty,
                "{} should be non-empty over the synthetic dataset",
                bq.name
            );
        }
    }

    #[test]
    fn empty_query_is_detected() {
        let g = generate(&YagoConfig::tiny());
        // hasDuration objects (durations) never have outgoing hasDuration edges,
        // so chaining it with itself twice is empty.
        let q = wireframe_query::templates::chain(g.dictionary(), &["hasDuration", "hasDuration"])
            .unwrap();
        let miner = QueryMiner::new(&g, 1);
        assert_eq!(miner.check_non_empty(&q), MineOutcome::Empty);
        assert!(!miner.passes_stats_precheck(&q));
    }

    #[test]
    fn mining_produces_valid_snowflakes() {
        let g = generate(&YagoConfig::tiny());
        let mut miner = QueryMiner::new(&g, 3);
        let (mined, stats) = miner.mine_snowflakes(200, 5);
        assert!(stats.attempts <= 200);
        assert_eq!(stats.mined, mined.len());
        for q in &mined {
            assert_eq!(q.num_patterns(), 9);
            assert_eq!(miner.check_non_empty(q), MineOutcome::NonEmpty);
        }
    }

    #[test]
    fn mining_produces_valid_diamonds() {
        let g = generate(&YagoConfig::tiny());
        let mut miner = QueryMiner::new(&g, 5);
        let (mined, stats) = miner.mine_diamonds(300, 5);
        assert_eq!(stats.mined, mined.len());
        for q in &mined {
            assert_eq!(q.num_patterns(), 4);
        }
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let g = generate(&YagoConfig::small());
        let mut miner = QueryMiner::new(&g, 1);
        miner.search_budget = 1;
        let bq = &table1_queries(&g).unwrap()[0];
        assert_eq!(
            miner.check_non_empty(&bq.query),
            MineOutcome::BudgetExhausted
        );
    }

    #[test]
    fn mining_deduplicates_equivalent_queries() {
        let g = generate(&YagoConfig::tiny());
        let mut miner = QueryMiner::new(&g, 17);
        let (mined, stats) = miner.mine_diamonds(2_000, 50);
        // Every mined query has a distinct canonical signature.
        let sigs: std::collections::HashSet<_> = mined
            .iter()
            .map(wireframe_query::canonical::signature)
            .collect();
        assert_eq!(sigs.len(), mined.len());
        // With 2000 attempts over a small vocabulary, duplicates do occur and
        // are counted rather than re-mined.
        assert_eq!(stats.mined, mined.len());
    }

    #[test]
    fn mining_is_deterministic_for_a_seed() {
        let g = generate(&YagoConfig::tiny());
        let (a, _) = QueryMiner::new(&g, 9).mine_diamonds(100, 3);
        let (b, _) = QueryMiner::new(&g, 9).mine_diamonds(100, 3);
        assert_eq!(a.len(), b.len());
        for (qa, qb) in a.iter().zip(&b) {
            assert_eq!(qa.to_string(), qb.to_string());
        }
    }
}

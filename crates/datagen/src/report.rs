//! Dataset reports: summary statistics of a generated (or loaded) graph.
//!
//! The paper characterizes YAGO2s by its triple count and predicate count and
//! relies on the heavy skew of real predicates for its factorization gains.
//! A [`DatasetReport`] makes the corresponding properties of a synthetic
//! dataset visible — per-predicate cardinalities, distinct counts, and degree
//! skew — so that benchmark runs can document the data they actually ran on.

use std::fmt::Write as _;

use wireframe_graph::{DegreeHistogram, End, Graph, PredId};

/// Summary of one predicate.
#[derive(Debug, Clone)]
pub struct PredicateReport {
    /// Predicate identifier.
    pub predicate: PredId,
    /// Predicate label.
    pub label: String,
    /// Number of edges.
    pub cardinality: usize,
    /// Number of distinct subjects.
    pub distinct_subjects: usize,
    /// Number of distinct objects.
    pub distinct_objects: usize,
    /// Fan-out skew (`max out-degree / mean out-degree`).
    pub subject_skew: f64,
    /// Fan-in skew (`max in-degree / mean in-degree`).
    pub object_skew: f64,
}

/// Summary of a whole dataset.
#[derive(Debug, Clone)]
pub struct DatasetReport {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of distinct predicates.
    pub predicates: usize,
    /// Number of triples.
    pub triples: usize,
    /// Per-predicate summaries, sorted by descending cardinality.
    pub per_predicate: Vec<PredicateReport>,
}

impl DatasetReport {
    /// Builds the report for `graph`.
    pub fn build(graph: &Graph) -> Self {
        let mut per_predicate: Vec<PredicateReport> = graph
            .dictionary()
            .predicates()
            .map(|(p, label)| {
                let u = graph.catalog().unigram(p);
                let subj = DegreeHistogram::build(graph, p, End::Subject);
                let obj = DegreeHistogram::build(graph, p, End::Object);
                PredicateReport {
                    predicate: p,
                    label: label.to_owned(),
                    cardinality: u.cardinality,
                    distinct_subjects: u.distinct_subjects,
                    distinct_objects: u.distinct_objects,
                    subject_skew: subj.skew(),
                    object_skew: obj.skew(),
                }
            })
            .collect();
        per_predicate.sort_by_key(|r| std::cmp::Reverse(r.cardinality));
        DatasetReport {
            nodes: graph.node_count(),
            predicates: graph.predicate_count(),
            triples: graph.triple_count(),
            per_predicate,
        }
    }

    /// The report of one predicate by label, if present.
    pub fn predicate(&self, label: &str) -> Option<&PredicateReport> {
        self.per_predicate.iter().find(|p| p.label == label)
    }

    /// Renders the report as a table (top `top_k` predicates by cardinality).
    pub fn to_table(&self, top_k: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "dataset: {} nodes, {} predicates, {} triples",
            self.nodes, self.predicates, self.triples
        );
        let _ = writeln!(
            out,
            "{:<22} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "predicate", "edges", "subjects", "objects", "out-skew", "in-skew"
        );
        for p in self.per_predicate.iter().take(top_k) {
            let _ = writeln!(
                out,
                "{:<22} {:>10} {:>10} {:>10} {:>10.1} {:>10.1}",
                p.label,
                p.cardinality,
                p.distinct_subjects,
                p.distinct_objects,
                p.subject_skew,
                p.object_skew
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::yago::{generate, YagoConfig};

    #[test]
    fn report_matches_graph_counts() {
        let g = generate(&YagoConfig::tiny());
        let r = DatasetReport::build(&g);
        assert_eq!(r.nodes, g.node_count());
        assert_eq!(r.predicates, g.predicate_count());
        assert_eq!(r.triples, g.triple_count());
        assert_eq!(r.per_predicate.len(), g.predicate_count());
        let total: usize = r.per_predicate.iter().map(|p| p.cardinality).sum();
        assert_eq!(total, g.triple_count());
    }

    #[test]
    fn predicates_are_sorted_by_cardinality() {
        let g = generate(&YagoConfig::tiny());
        let r = DatasetReport::build(&g);
        for pair in r.per_predicate.windows(2) {
            assert!(pair[0].cardinality >= pair[1].cardinality);
        }
    }

    #[test]
    fn lookup_by_label_and_rendering() {
        let g = generate(&YagoConfig::tiny());
        let r = DatasetReport::build(&g);
        assert!(r.predicate("actedIn").is_some());
        assert!(r.predicate("noSuchPredicate").is_none());
        let table = r.to_table(5);
        assert!(table.contains("dataset:"));
        assert!(table.lines().count() <= 7);
    }

    #[test]
    fn skew_reflects_planted_fanin() {
        let g = generate(&YagoConfig::tiny());
        let r = DatasetReport::build(&g);
        // The workload predicates exist and are non-trivially skewed on at
        // least one side thanks to the planted structures / Zipf objects.
        let acted = r.predicate("actedIn").unwrap();
        assert!(acted.cardinality > 0);
        assert!(acted.subject_skew >= 1.0 || acted.object_skew >= 1.0);
    }
}

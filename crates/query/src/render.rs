//! Rendering a [`ConjunctiveQuery`] back to parseable SPARQL text.
//!
//! The network serving layer carries queries as text, while benchmark
//! workloads carry compiled [`ConjunctiveQuery`] values — this renderer
//! bridges them. The output of [`to_sparql`] parses back through
//! [`crate::parse_query`] (against the same dictionary) to a query with the
//! same patterns, projection and distinctness.

use wireframe_graph::Dictionary;

use crate::cq::ConjunctiveQuery;
use crate::term::Term;

/// Renders `cq` as SPARQL text accepted by [`crate::parse_query`].
///
/// Constants are emitted in `<label>` form, which the parser reads as a
/// verbatim label. Labels must not contain whitespace (the parser tokenizes
/// on whitespace) — dictionary labels are whitespace-free by construction
/// in this workspace, so any dictionary-resolved query renders faithfully.
pub fn to_sparql(cq: &ConjunctiveQuery, dict: &Dictionary) -> String {
    let mut out = String::from("SELECT");
    if cq.distinct() {
        out.push_str(" DISTINCT");
    }
    for &v in cq.projection() {
        out.push_str(" ?");
        out.push_str(cq.var_name(v));
    }
    out.push_str(" WHERE {");
    for p in cq.patterns() {
        out.push(' ');
        push_term(&mut out, cq, dict, p.subject);
        out.push_str(" <");
        out.push_str(dict.predicate_label(p.predicate).unwrap_or("?"));
        out.push_str("> ");
        push_term(&mut out, cq, dict, p.object);
        out.push_str(" .");
    }
    out.push_str(" }");
    out
}

fn push_term(out: &mut String, cq: &ConjunctiveQuery, dict: &Dictionary, term: Term) {
    match term {
        Term::Var(v) => {
            out.push('?');
            out.push_str(cq.var_name(v));
        }
        Term::Const(n) => {
            out.push('<');
            out.push_str(dict.node_label(n).unwrap_or("?"));
            out.push('>');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;
    use wireframe_graph::GraphBuilder;

    fn dict() -> Dictionary {
        let mut b = GraphBuilder::new();
        b.add("alice", "knows", "bob");
        b.add("bob", "worksAt", "acme");
        b.add("bob", "livesIn", "berlin");
        b.build().dictionary().clone()
    }

    #[test]
    fn rendered_text_parses_back_to_the_same_query() {
        let d = dict();
        let texts = [
            "SELECT ?x ?z WHERE { ?x <knows> ?y . ?y <worksAt> ?z . }",
            "SELECT DISTINCT ?x WHERE { ?x <knows> <bob> . <bob> <livesIn> ?place . }",
            "select * where { ?a knows ?b }",
        ];
        for text in texts {
            let original = parse_query(text, &d).unwrap();
            let rendered = to_sparql(&original, &d);
            let reparsed = parse_query(&rendered, &d)
                .unwrap_or_else(|e| panic!("{rendered:?} does not parse back: {e}"));
            assert_eq!(reparsed.patterns(), original.patterns(), "{rendered}");
            assert_eq!(reparsed.projection(), original.projection(), "{rendered}");
            assert_eq!(reparsed.distinct(), original.distinct(), "{rendered}");
            // Idempotence: rendering the reparse reproduces the text.
            assert_eq!(to_sparql(&reparsed, &d), rendered);
        }
    }

    #[test]
    fn constants_render_in_angle_brackets() {
        let d = dict();
        let q = parse_query("SELECT ?x WHERE { ?x <knows> bob . }", &d).unwrap();
        let rendered = to_sparql(&q, &d);
        assert!(rendered.contains("<bob>"), "{rendered}");
        assert!(rendered.contains("<knows>"), "{rendered}");
    }
}

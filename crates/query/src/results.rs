//! Query results: embeddings of a conjunctive query.
//!
//! An *embedding* (an "answer") is a homomorphic mapping of the query's
//! variables to data-graph nodes such that every triple pattern maps onto a
//! data edge with the pattern's predicate. The answer of a CQ is the set of
//! embeddings, each restricted to the projected variables.
//!
//! Every engine in this workspace (Wireframe and the baselines) returns an
//! [`EmbeddingSet`], which therefore doubles as the equivalence oracle in the
//! cross-engine tests.

use std::collections::HashSet;

use wireframe_graph::NodeId;

use crate::cq::ConjunctiveQuery;
use crate::term::Var;

/// A set of embedding tuples with an explicit variable schema.
#[derive(Debug, Clone, Default)]
pub struct EmbeddingSet {
    schema: Vec<Var>,
    tuples: Vec<Vec<NodeId>>,
}

impl EmbeddingSet {
    /// Creates an embedding set from a schema and tuples. Every tuple must
    /// have the schema's arity.
    pub fn new(schema: Vec<Var>, tuples: Vec<Vec<NodeId>>) -> Self {
        debug_assert!(tuples.iter().all(|t| t.len() == schema.len()));
        EmbeddingSet { schema, tuples }
    }

    /// An empty result with the given schema.
    pub fn empty(schema: Vec<Var>) -> Self {
        EmbeddingSet {
            schema,
            tuples: Vec::new(),
        }
    }

    /// The variables of each tuple, in column order.
    pub fn schema(&self) -> &[Var] {
        &self.schema
    }

    /// The embedding tuples.
    pub fn tuples(&self) -> &[Vec<NodeId>] {
        &self.tuples
    }

    /// Number of embeddings.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether there are no embeddings.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The value bound to `v` in tuple `row`, if `v` is in the schema.
    pub fn value(&self, row: usize, v: Var) -> Option<NodeId> {
        let col = self.schema.iter().position(|&s| s == v)?;
        self.tuples.get(row).map(|t| t[col])
    }

    /// Projects onto the query's projection list (reordering columns), applying
    /// DISTINCT if the query requests it. Variables in the projection that are
    /// not in the schema are rejected with `None`.
    pub fn project(&self, query: &ConjunctiveQuery) -> Option<EmbeddingSet> {
        let cols: Option<Vec<usize>> = query
            .projection()
            .iter()
            .map(|v| self.schema.iter().position(|s| s == v))
            .collect();
        let cols = cols?;
        let mut tuples: Vec<Vec<NodeId>> = self
            .tuples
            .iter()
            .map(|t| cols.iter().map(|&c| t[c]).collect())
            .collect();
        if query.distinct() {
            let mut seen = HashSet::with_capacity(tuples.len());
            tuples.retain(|t| seen.insert(t.clone()));
        }
        Some(EmbeddingSet {
            schema: query.projection().to_vec(),
            tuples,
        })
    }

    /// Returns the tuples re-ordered into a canonical form (columns sorted by
    /// variable index, rows sorted and deduplicated). Two engines computing the
    /// same answer produce equal canonical forms regardless of evaluation
    /// order — this is the comparison used by the equivalence tests.
    pub fn canonicalize(&self) -> EmbeddingSet {
        let mut order: Vec<usize> = (0..self.schema.len()).collect();
        order.sort_by_key(|&i| self.schema[i]);
        let schema: Vec<Var> = order.iter().map(|&i| self.schema[i]).collect();
        let mut tuples: Vec<Vec<NodeId>> = self
            .tuples
            .iter()
            .map(|t| order.iter().map(|&i| t[i]).collect())
            .collect();
        tuples.sort_unstable();
        tuples.dedup();
        EmbeddingSet { schema, tuples }
    }

    /// Whether two embedding sets denote the same answer (same canonical form).
    pub fn same_answer(&self, other: &EmbeddingSet) -> bool {
        let a = self.canonicalize();
        let b = other.canonicalize();
        a.schema == b.schema && a.tuples == b.tuples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::CqBuilder;
    use wireframe_graph::GraphBuilder;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn basic_accessors() {
        let e = EmbeddingSet::new(
            vec![Var(0), Var(1)],
            vec![vec![n(1), n(2)], vec![n(3), n(4)]],
        );
        assert_eq!(e.len(), 2);
        assert!(!e.is_empty());
        assert_eq!(e.value(0, Var(1)), Some(n(2)));
        assert_eq!(e.value(0, Var(9)), None);
        assert_eq!(e.value(5, Var(0)), None);
    }

    #[test]
    fn canonicalize_sorts_columns_and_rows() {
        let a = EmbeddingSet::new(
            vec![Var(1), Var(0)],
            vec![vec![n(2), n(1)], vec![n(4), n(3)]],
        );
        let b = EmbeddingSet::new(
            vec![Var(0), Var(1)],
            vec![vec![n(3), n(4)], vec![n(1), n(2)]],
        );
        assert!(a.same_answer(&b));
    }

    #[test]
    fn same_answer_detects_difference() {
        let a = EmbeddingSet::new(vec![Var(0)], vec![vec![n(1)]]);
        let b = EmbeddingSet::new(vec![Var(0)], vec![vec![n(2)]]);
        assert!(!a.same_answer(&b));
        let c = EmbeddingSet::new(vec![Var(1)], vec![vec![n(1)]]);
        assert!(
            !a.same_answer(&c),
            "different schemas are different answers"
        );
    }

    #[test]
    fn canonicalize_dedups() {
        let a = EmbeddingSet::new(vec![Var(0)], vec![vec![n(1)], vec![n(1)]]);
        assert_eq!(a.canonicalize().len(), 1);
    }

    #[test]
    fn project_with_distinct() {
        let mut gb = GraphBuilder::new();
        gb.add("a", "p", "b");
        let g = gb.build();
        let mut qb = CqBuilder::new(g.dictionary());
        qb.distinct();
        qb.project("?x");
        qb.pattern("?x", "p", "?y").unwrap();
        let q = qb.build().unwrap();

        // schema (x, y) with duplicate x values
        let e = EmbeddingSet::new(
            vec![Var(0), Var(1)],
            vec![vec![n(0), n(1)], vec![n(0), n(2)]],
        );
        let p = e.project(&q).unwrap();
        assert_eq!(p.schema(), &[Var(0)]);
        assert_eq!(p.len(), 1, "DISTINCT collapses duplicate projections");
    }

    #[test]
    fn project_missing_column_is_none() {
        let mut gb = GraphBuilder::new();
        gb.add("a", "p", "b");
        let g = gb.build();
        let mut qb = CqBuilder::new(g.dictionary());
        qb.pattern("?x", "p", "?y").unwrap();
        let q = qb.build().unwrap();
        let e = EmbeddingSet::new(vec![Var(0)], vec![vec![n(0)]]);
        assert!(e.project(&q).is_none(), "schema lacks ?y");
    }

    #[test]
    fn empty_set() {
        let e = EmbeddingSet::empty(vec![Var(0), Var(1)]);
        assert!(e.is_empty());
        assert_eq!(e.schema().len(), 2);
    }
}

//! Query results: embeddings of a conjunctive query.
//!
//! An *embedding* (an "answer") is a homomorphic mapping of the query's
//! variables to data-graph nodes such that every triple pattern maps onto a
//! data edge with the pattern's predicate. The answer of a CQ is the set of
//! embeddings, each restricted to the projected variables.
//!
//! Every engine in this workspace (Wireframe and the baselines) returns an
//! [`EmbeddingSet`], which therefore doubles as the equivalence oracle in the
//! cross-engine tests.

use wireframe_graph::NodeId;

use crate::cq::ConjunctiveQuery;
use crate::term::Var;

/// A set of embedding tuples with an explicit variable schema.
///
/// Tuples are stored **row-major in one flat arena** (`len × arity` node
/// identifiers): a million-embedding answer is one allocation, rows are
/// contiguous slices, and producers that already work on flat buffers (the
/// defactorizer) hand their arena over without per-tuple boxing. The
/// [`EmbeddingSet::new`] constructor still accepts nested `Vec<Vec<_>>` for
/// convenience and flattens it.
#[derive(Debug, Clone, Default)]
pub struct EmbeddingSet {
    schema: Vec<Var>,
    /// `len * schema.len()` values, row-major.
    data: Vec<NodeId>,
    /// Row count, kept explicitly so a zero-arity schema stays well-defined.
    len: usize,
}

impl EmbeddingSet {
    /// Creates an embedding set from a schema and nested tuples. Every tuple
    /// must have the schema's arity. (Convenience constructor; producers with
    /// flat buffers should use [`EmbeddingSet::from_flat`].)
    pub fn new(schema: Vec<Var>, tuples: Vec<Vec<NodeId>>) -> Self {
        debug_assert!(tuples.iter().all(|t| t.len() == schema.len()));
        let len = tuples.len();
        let mut data = Vec::with_capacity(len * schema.len());
        for t in &tuples {
            data.extend_from_slice(t);
        }
        EmbeddingSet { schema, data, len }
    }

    /// Creates an embedding set from row-major flat data. `data.len()` must
    /// be a multiple of the schema's arity. A zero-arity schema yields an
    /// empty set here — a fully ground query's row count is not recoverable
    /// from flat data, so such producers use
    /// [`EmbeddingSet::from_flat_rows`].
    pub fn from_flat(schema: Vec<Var>, data: Vec<NodeId>) -> Self {
        let arity = schema.len();
        let len = data.len().checked_div(arity).unwrap_or(0);
        EmbeddingSet::from_flat_rows(schema, data, len)
    }

    /// Creates an embedding set from row-major flat data with an explicit
    /// row count, which a zero-arity (fully ground) schema needs: `len`
    /// empty tuples carry no data but are still answers.
    pub fn from_flat_rows(schema: Vec<Var>, data: Vec<NodeId>, len: usize) -> Self {
        assert_eq!(
            data.len(),
            len * schema.len(),
            "flat data must hold exactly len × arity values"
        );
        EmbeddingSet { schema, data, len }
    }

    /// An empty result with the given schema.
    pub fn empty(schema: Vec<Var>) -> Self {
        EmbeddingSet {
            schema,
            data: Vec::new(),
            len: 0,
        }
    }

    /// The variables of each tuple, in column order.
    pub fn schema(&self) -> &[Var] {
        &self.schema
    }

    /// Iterates over the embedding tuples as row slices (a zero-arity set
    /// yields `len` empty rows).
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[NodeId]> + '_ {
        let arity = self.schema.len();
        (0..self.len).map(move |i| &self.data[i * arity..(i + 1) * arity])
    }

    /// One embedding tuple as a row slice.
    pub fn row(&self, i: usize) -> Option<&[NodeId]> {
        if i >= self.len {
            return None;
        }
        let arity = self.schema.len();
        Some(&self.data[i * arity..(i + 1) * arity])
    }

    /// The row-major flat tuple data (`len() × schema arity` values).
    pub fn flat_data(&self) -> &[NodeId] {
        &self.data
    }

    /// Number of embeddings.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether there are no embeddings.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The value bound to `v` in tuple `row`, if `v` is in the schema.
    pub fn value(&self, row: usize, v: Var) -> Option<NodeId> {
        let col = self.schema.iter().position(|&s| s == v)?;
        self.row(row).map(|t| t[col])
    }

    /// Appends another set's tuples. Panics if the schemas differ (callers
    /// concatenate partitions of one logical answer, e.g. the parallel
    /// defactorizer's per-worker outputs).
    pub fn append(&mut self, other: &EmbeddingSet) {
        assert_eq!(self.schema, other.schema, "appending mismatched schemas");
        self.data.extend_from_slice(&other.data);
        self.len += other.len;
    }

    /// Consuming form of [`EmbeddingSet::project`] for callers that
    /// guarantee the rows are pairwise **distinct** — true of every
    /// join/defactorization output, where each full variable assignment
    /// appears exactly once.
    ///
    /// Under that guarantee a projection that keeps *every* schema column
    /// (in any order) is a bijection on rows, so `DISTINCT` cannot remove
    /// anything and the expensive sort-and-dedup pass is skipped: identity
    /// projections return `self` untouched, permutations do a single gather
    /// pass. Projections that drop columns delegate to
    /// [`EmbeddingSet::project`], deduplicating as requested.
    pub fn into_projected_set(self, query: &ConjunctiveQuery) -> Option<EmbeddingSet> {
        let cols: Option<Vec<usize>> = query
            .projection()
            .iter()
            .map(|v| self.schema.iter().position(|s| s == v))
            .collect();
        let cols = cols?;
        let full_permutation = cols.len() == self.schema.len() && {
            let mut sorted = cols.clone();
            sorted.sort_unstable();
            sorted.iter().enumerate().all(|(i, &c)| i == c)
        };
        if !full_permutation {
            return self.project(query);
        }
        if cols.iter().enumerate().all(|(i, &c)| i == c) {
            return Some(EmbeddingSet {
                schema: query.projection().to_vec(),
                ..self
            });
        }
        let mut data = Vec::with_capacity(self.data.len());
        for t in self.rows() {
            data.extend(cols.iter().map(|&c| t[c]));
        }
        Some(EmbeddingSet::from_flat_rows(
            query.projection().to_vec(),
            data,
            self.len,
        ))
    }

    /// Projects onto the query's projection list (reordering columns), applying
    /// DISTINCT if the query requests it. Variables in the projection that are
    /// not in the schema are rejected with `None`.
    pub fn project(&self, query: &ConjunctiveQuery) -> Option<EmbeddingSet> {
        let cols: Option<Vec<usize>> = query
            .projection()
            .iter()
            .map(|v| self.schema.iter().position(|s| s == v))
            .collect();
        let cols = cols?;
        let mut data: Vec<NodeId> = Vec::with_capacity(self.len * cols.len());
        for t in self.rows() {
            data.extend(cols.iter().map(|&c| t[c]));
        }
        let mut out = EmbeddingSet::from_flat_rows(query.projection().to_vec(), data, self.len);
        if query.distinct() {
            out.sort_dedup_rows();
        }
        Some(out)
    }

    /// Sorts the rows lexicographically and removes duplicates, in place.
    fn sort_dedup_rows(&mut self) {
        let arity = self.schema.len();
        if arity == 0 {
            // All rows are the empty tuple; DISTINCT keeps at most one.
            self.len = self.len.min(1);
            return;
        }
        if self.len <= 1 {
            return;
        }
        let mut order: Vec<usize> = (0..self.len).collect();
        let row = |i: usize| &self.data[i * arity..(i + 1) * arity];
        order.sort_unstable_by(|&a, &b| row(a).cmp(row(b)));
        order.dedup_by(|&mut a, &mut b| row(a) == row(b));
        let mut data = Vec::with_capacity(order.len() * arity);
        for i in &order {
            data.extend_from_slice(row(*i));
        }
        self.len = order.len();
        self.data = data;
    }

    /// The first `k` rows under the **canonical row order**: rows sorted
    /// lexicographically over the schema's column order (columns are *not*
    /// reordered — the schema stays the caller's projection). This is the
    /// order the top-k serving stack pins so that "the first k rows" is
    /// well-defined across engines, storage backends and shard merges: any
    /// two evaluations of the same query agree bit-for-bit on the prefix.
    ///
    /// `k >= len()` returns the whole answer, canonically sorted. Rows are
    /// **not** deduplicated — producers feeding this are join outputs whose
    /// rows are already distinct (and DISTINCT projections deduplicate
    /// before limiting).
    pub fn canonical_prefix(&self, k: usize) -> EmbeddingSet {
        let arity = self.schema.len();
        let keep = self.len.min(k);
        if arity == 0 {
            return EmbeddingSet {
                schema: Vec::new(),
                data: Vec::new(),
                len: keep,
            };
        }
        let row = |i: usize| &self.data[i * arity..(i + 1) * arity];
        let mut order: Vec<usize> = (0..self.len).collect();
        if keep < self.len {
            // Partial selection: O(n) to split off the k smallest rows,
            // then sort just those.
            order.select_nth_unstable_by(keep, |&a, &b| row(a).cmp(row(b)));
            order.truncate(keep);
        }
        order.sort_unstable_by(|&a, &b| row(a).cmp(row(b)));
        let mut data = Vec::with_capacity(keep * arity);
        for &i in &order {
            data.extend_from_slice(row(i));
        }
        EmbeddingSet {
            schema: self.schema.clone(),
            data,
            len: keep,
        }
    }

    /// Returns the tuples re-ordered into a canonical form (columns sorted by
    /// variable index, rows sorted and deduplicated). Two engines computing the
    /// same answer produce equal canonical forms regardless of evaluation
    /// order — this is the comparison used by the equivalence tests.
    pub fn canonicalize(&self) -> EmbeddingSet {
        let mut order: Vec<usize> = (0..self.schema.len()).collect();
        order.sort_by_key(|&i| self.schema[i]);
        let schema: Vec<Var> = order.iter().map(|&i| self.schema[i]).collect();
        let mut data: Vec<NodeId> = Vec::with_capacity(self.data.len());
        for t in self.rows() {
            data.extend(order.iter().map(|&i| t[i]));
        }
        let mut out = EmbeddingSet::from_flat_rows(schema, data, self.len);
        out.sort_dedup_rows();
        out
    }

    /// Whether two embedding sets denote the same answer (same canonical form).
    pub fn same_answer(&self, other: &EmbeddingSet) -> bool {
        let a = self.canonicalize();
        let b = other.canonicalize();
        a.schema == b.schema && a.len == b.len && a.data == b.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::CqBuilder;
    use wireframe_graph::GraphBuilder;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn basic_accessors() {
        let e = EmbeddingSet::new(
            vec![Var(0), Var(1)],
            vec![vec![n(1), n(2)], vec![n(3), n(4)]],
        );
        assert_eq!(e.len(), 2);
        assert!(!e.is_empty());
        assert_eq!(e.value(0, Var(1)), Some(n(2)));
        assert_eq!(e.value(0, Var(9)), None);
        assert_eq!(e.value(5, Var(0)), None);
    }

    #[test]
    fn canonicalize_sorts_columns_and_rows() {
        let a = EmbeddingSet::new(
            vec![Var(1), Var(0)],
            vec![vec![n(2), n(1)], vec![n(4), n(3)]],
        );
        let b = EmbeddingSet::new(
            vec![Var(0), Var(1)],
            vec![vec![n(3), n(4)], vec![n(1), n(2)]],
        );
        assert!(a.same_answer(&b));
    }

    #[test]
    fn same_answer_detects_difference() {
        let a = EmbeddingSet::new(vec![Var(0)], vec![vec![n(1)]]);
        let b = EmbeddingSet::new(vec![Var(0)], vec![vec![n(2)]]);
        assert!(!a.same_answer(&b));
        let c = EmbeddingSet::new(vec![Var(1)], vec![vec![n(1)]]);
        assert!(
            !a.same_answer(&c),
            "different schemas are different answers"
        );
    }

    #[test]
    fn canonicalize_dedups() {
        let a = EmbeddingSet::new(vec![Var(0)], vec![vec![n(1)], vec![n(1)]]);
        assert_eq!(a.canonicalize().len(), 1);
    }

    #[test]
    fn project_with_distinct() {
        let mut gb = GraphBuilder::new();
        gb.add("a", "p", "b");
        let g = gb.build();
        let mut qb = CqBuilder::new(g.dictionary());
        qb.distinct();
        qb.project("?x");
        qb.pattern("?x", "p", "?y").unwrap();
        let q = qb.build().unwrap();

        // schema (x, y) with duplicate x values
        let e = EmbeddingSet::new(
            vec![Var(0), Var(1)],
            vec![vec![n(0), n(1)], vec![n(0), n(2)]],
        );
        let p = e.project(&q).unwrap();
        assert_eq!(p.schema(), &[Var(0)]);
        assert_eq!(p.len(), 1, "DISTINCT collapses duplicate projections");
    }

    #[test]
    fn project_missing_column_is_none() {
        let mut gb = GraphBuilder::new();
        gb.add("a", "p", "b");
        let g = gb.build();
        let mut qb = CqBuilder::new(g.dictionary());
        qb.pattern("?x", "p", "?y").unwrap();
        let q = qb.build().unwrap();
        let e = EmbeddingSet::new(vec![Var(0)], vec![vec![n(0)]]);
        assert!(e.project(&q).is_none(), "schema lacks ?y");
    }

    #[test]
    fn zero_arity_sets_keep_their_row_count() {
        // A fully ground query's answer has no columns but still has rows.
        let one = EmbeddingSet::new(vec![], vec![vec![]]);
        assert_eq!(one.len(), 1);
        assert_eq!(one.rows().count(), 1);
        assert_eq!(one.rows().next().unwrap(), &[] as &[NodeId]);
        let two = EmbeddingSet::from_flat_rows(vec![], vec![], 2);
        assert_eq!(two.len(), 2);
        // Canonically both denote the singleton set of the empty tuple…
        assert!(one.same_answer(&two));
        // …which differs from the empty answer.
        let none = EmbeddingSet::empty(vec![]);
        assert!(!one.same_answer(&none));
    }

    #[test]
    fn empty_set() {
        let e = EmbeddingSet::empty(vec![Var(0), Var(1)]);
        assert!(e.is_empty());
        assert_eq!(e.schema().len(), 2);
    }

    #[test]
    fn canonical_prefix_sorts_rows_keeps_schema() {
        // Schema deliberately not in Var order: the prefix must keep it.
        let e = EmbeddingSet::new(
            vec![Var(1), Var(0)],
            vec![
                vec![n(5), n(1)],
                vec![n(2), n(9)],
                vec![n(2), n(3)],
                vec![n(7), n(0)],
            ],
        );
        let p = e.canonical_prefix(2);
        assert_eq!(p.schema(), &[Var(1), Var(0)]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.row(0), Some(&[n(2), n(3)] as &[NodeId]));
        assert_eq!(p.row(1), Some(&[n(2), n(9)] as &[NodeId]));

        // k >= len returns the whole set, sorted.
        let full = e.canonical_prefix(10);
        assert_eq!(full.len(), 4);
        assert_eq!(full.row(0), Some(&[n(2), n(3)] as &[NodeId]));
        assert_eq!(full.row(3), Some(&[n(7), n(0)] as &[NodeId]));

        // Prefix-of-the-prefix agrees with prefix-of-the-full-sort.
        assert_eq!(full.canonical_prefix(2).flat_data(), p.flat_data());
    }

    #[test]
    fn canonical_prefix_zero_arity_counts_rows() {
        let two = EmbeddingSet::from_flat_rows(vec![], vec![], 2);
        assert_eq!(two.canonical_prefix(1).len(), 1);
        assert_eq!(two.canonical_prefix(5).len(), 2);
    }
}

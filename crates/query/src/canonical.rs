//! Canonical forms and signatures of conjunctive queries.
//!
//! The query miner samples template instantiations; many of them are the same
//! query up to variable renaming or pattern reordering (e.g. a snowflake whose
//! two spokes swap places). A canonical signature lets the miner — and any
//! workload cache — deduplicate such queries cheaply. Two queries with the
//! same signature are isomorphic *as labeled query graphs* (same pattern
//! multiset under a consistent variable renaming); the signature is computed
//! by iterative partition refinement over the query graph, the standard
//! colour-refinement approach, which is exact for the tree-shaped and
//! single-cycle queries used throughout this workspace.

use std::collections::BTreeMap;

use wireframe_graph::PredId;

use crate::cq::ConjunctiveQuery;
use crate::term::{Term, Var};

/// A canonical signature of a query's structure and labels.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QuerySignature(String);

impl QuerySignature {
    /// The signature as a string (stable across runs; suitable as a map key).
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

/// Computes the canonical signature of `query`.
pub fn signature(query: &ConjunctiveQuery) -> QuerySignature {
    let colors = refined_colors(query);

    // The signature: the sorted multiset of pattern descriptors under the
    // final colours, plus the sorted multiset of projected-variable colours
    // and the DISTINCT flag.
    let mut projection: Vec<String> = query
        .projection()
        .iter()
        .map(|v| colors[v.index()].clone())
        .collect();
    projection.sort();
    QuerySignature(format!(
        "distinct={} edges=[{}] proj=[{}]",
        query.distinct(),
        edge_descriptors(query, &colors).join(";"),
        projection.join(";")
    ))
}

/// Computes an *order-sensitive* cache key for prepared-statement caches:
/// like [`signature`], but the projected variables keep their SELECT-clause
/// order (and orientation: a variable's canonical colour distinguishes, say,
/// chain sources from chain targets).
///
/// [`signature`] deliberately sorts the projection so that spoke-swapped
/// template instantiations deduplicate in the query miner; a plan cache must
/// NOT merge those, because `SELECT ?x ?z` and `SELECT ?z ?x` ask for
/// different column orders. Queries sharing a plan-cache key have identical
/// answer sets column for column (equal up to a colour-preserving
/// automorphism, under which the embedding set is closed).
pub fn plan_cache_key(query: &ConjunctiveQuery) -> QuerySignature {
    let colors = refined_colors(query);
    let projection: Vec<String> = query
        .projection()
        .iter()
        .map(|v| colors[v.index()].clone())
        .collect();
    QuerySignature(format!(
        "distinct={} edges=[{}] proj-ordered=[{}]",
        query.distinct(),
        edge_descriptors(query, &colors).join(";"),
        projection.join(";")
    ))
}

/// The **predicate footprint** of a query: the sorted, deduplicated set of
/// predicate identifiers its patterns touch.
///
/// The footprint is invariant under everything the canonical forms quotient
/// away (variable renaming, pattern reordering, projection order), so two
/// queries sharing a [`plan_cache_key`] share a footprint — which is what
/// lets a prepared-plan cache invalidate by footprint when the data changes:
/// a mutation batch touching predicates `M` only affects cached plans whose
/// footprint intersects `M` ([`footprints_intersect`]).
pub fn predicate_footprint(query: &ConjunctiveQuery) -> Vec<PredId> {
    let mut preds: Vec<PredId> = query.patterns().iter().map(|p| p.predicate).collect();
    preds.sort_unstable();
    preds.dedup();
    preds
}

/// Whether two ascending-sorted footprints share a predicate (linear merge
/// probe; both inputs come from [`predicate_footprint`]).
pub fn footprints_intersect(a: &[PredId], b: &[PredId]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// Sorted pattern descriptors of `query` under final colours.
fn edge_descriptors(query: &ConjunctiveQuery, colors: &[String]) -> Vec<String> {
    let mut edges: Vec<String> = query
        .patterns()
        .iter()
        .map(|p| {
            let end = |t: Term| match t {
                Term::Var(v) => colors[v.index()].clone(),
                Term::Const(c) => format!("n{}", c.0),
            };
            format!("{}--p{}-->{}", end(p.subject), p.predicate.0, end(p.object))
        })
        .collect();
    edges.sort();
    edges
}

/// Runs iterative colour refinement over the query graph and returns the
/// final canonical colour of every variable.
fn refined_colors(query: &ConjunctiveQuery) -> Vec<String> {
    // Initial colour of a variable: multiset of (direction, predicate) of its
    // incident patterns, plus how often it occurs as subject/object of each.
    let mut colors: Vec<String> = (0..query.num_vars() as u32)
        .map(|v| initial_color(query, Var(v)))
        .collect();

    // Refine: a variable's colour becomes (own colour, sorted multiset of
    // (edge descriptor, neighbour colour)). Iterate as many times as there are
    // variables — enough for colour propagation across any simple query graph.
    for _ in 0..query.num_vars().max(1) {
        let mut next = Vec::with_capacity(colors.len());
        for v in 0..query.num_vars() as u32 {
            let v = Var(v);
            let mut neighbour_part: Vec<String> = Vec::new();
            for p in query.patterns() {
                let (s, o) = (p.subject, p.object);
                match (s, o) {
                    (Term::Var(a), Term::Var(b)) if a == v && b == v => {
                        neighbour_part.push(format!("loop:p{}", p.predicate.0));
                    }
                    (Term::Var(a), Term::Var(b)) if a == v => {
                        neighbour_part.push(format!(
                            "out:p{}:{}",
                            p.predicate.0,
                            colors[b.index()]
                        ));
                    }
                    (Term::Var(a), Term::Var(b)) if b == v => {
                        neighbour_part.push(format!("in:p{}:{}", p.predicate.0, colors[a.index()]));
                    }
                    (Term::Var(a), Term::Const(c)) if a == v => {
                        neighbour_part.push(format!("out-const:p{}:n{}", p.predicate.0, c.0));
                    }
                    (Term::Const(c), Term::Var(b)) if b == v => {
                        neighbour_part.push(format!("in-const:p{}:n{}", p.predicate.0, c.0));
                    }
                    _ => {}
                }
            }
            neighbour_part.sort();
            next.push(format!(
                "({})[{}]",
                colors[v.index()],
                neighbour_part.join(",")
            ));
        }
        // Compress colours to small dense names, assigned by the sorted order
        // of the expanded colour strings so the naming is independent of the
        // query's variable numbering.
        let mut distinct = next.clone();
        distinct.sort();
        distinct.dedup();
        let rename: BTreeMap<&String, usize> =
            distinct.iter().enumerate().map(|(i, c)| (c, i)).collect();
        colors = next.iter().map(|c| format!("c{}", rename[c])).collect();
    }
    colors
}

fn initial_color(query: &ConjunctiveQuery, v: Var) -> String {
    let mut parts: Vec<String> = Vec::new();
    for p in query.patterns() {
        if p.subject.as_var() == Some(v) {
            parts.push(format!("s:p{}", p.predicate.0));
        }
        if p.object.as_var() == Some(v) {
            parts.push(format!("o:p{}", p.predicate.0));
        }
    }
    parts.sort();
    let projected = query.projection().contains(&v);
    format!("proj={projected};{}", parts.join(","))
}

/// Whether two queries have the same canonical signature (structurally
/// equivalent up to variable renaming and pattern order).
pub fn equivalent(a: &ConjunctiveQuery, b: &ConjunctiveQuery) -> bool {
    signature(a) == signature(b)
}

/// Exact isomorphism test with ordered-projection correspondence: whether a
/// variable bijection `f` exists with `f(a.proj[i]) = b.proj[i]` for every
/// projection position, mapping `a`'s pattern multiset onto `b`'s (same
/// predicates, directions and constants), with matching DISTINCT flags.
///
/// Colour refinement ([`signature`] / [`plan_cache_key`]) is a 1-WL test: it
/// never separates isomorphic queries but — like all 1-WL tests — can fail
/// to separate certain non-isomorphic ones (a 6-cycle and two disjoint
/// triangles over one predicate colour identically). Callers that *reuse
/// results* across queries, such as a prepared-query cache, must confirm a
/// colour-level match with this exact test. Backtracking over the pattern
/// multiset; cheap for the small CQs this workspace evaluates (≤ ~10
/// patterns).
pub fn isomorphic(a: &ConjunctiveQuery, b: &ConjunctiveQuery) -> bool {
    if a.num_patterns() != b.num_patterns()
        || a.num_vars() != b.num_vars()
        || a.distinct() != b.distinct()
        || a.projection().len() != b.projection().len()
    {
        return false;
    }
    // Seed the bijection with the position-wise projection correspondence.
    let mut map: Vec<Option<Var>> = vec![None; a.num_vars()];
    let mut rmap: Vec<Option<Var>> = vec![None; b.num_vars()];
    for (&av, &bv) in a.projection().iter().zip(b.projection()) {
        if !bind(&mut map, &mut rmap, av, bv) {
            return false;
        }
    }
    let mut used = vec![false; b.num_patterns()];
    match_patterns(a, b, 0, &mut used, &mut map, &mut rmap)
}

/// Binds `av ↔ bv` in the bijection; false on conflict.
fn bind(map: &mut [Option<Var>], rmap: &mut [Option<Var>], av: Var, bv: Var) -> bool {
    match (map[av.index()], rmap[bv.index()]) {
        (None, None) => {
            map[av.index()] = Some(bv);
            rmap[bv.index()] = Some(av);
            true
        }
        (Some(existing), _) => existing == bv,
        (None, Some(_)) => false,
    }
}

/// Matches `a`'s pattern `i` onwards against unused patterns of `b`,
/// extending the variable bijection consistently.
fn match_patterns(
    a: &ConjunctiveQuery,
    b: &ConjunctiveQuery,
    i: usize,
    used: &mut [bool],
    map: &mut [Option<Var>],
    rmap: &mut [Option<Var>],
) -> bool {
    if i == a.num_patterns() {
        return true;
    }
    let pa = &a.patterns()[i];
    for j in 0..b.num_patterns() {
        if used[j] {
            continue;
        }
        let pb = &b.patterns()[j];
        if pa.predicate != pb.predicate {
            continue;
        }
        // Tentatively extend the bijection; remember what to undo.
        let mut added: Vec<(usize, usize)> = Vec::new();
        let mut ok = true;
        for (ta, tb) in [(pa.subject, pb.subject), (pa.object, pb.object)] {
            match (ta, tb) {
                (Term::Const(ca), Term::Const(cb)) => ok &= ca == cb,
                (Term::Var(va), Term::Var(vb)) => {
                    let fresh = map[va.index()].is_none() && rmap[vb.index()].is_none();
                    ok &= bind(map, rmap, va, vb);
                    if ok && fresh {
                        added.push((va.index(), vb.index()));
                    }
                }
                _ => ok = false,
            }
            if !ok {
                break;
            }
        }
        if ok {
            used[j] = true;
            if match_patterns(a, b, i + 1, used, map, rmap) {
                return true;
            }
            used[j] = false;
        }
        for (ai, bi) in added {
            map[ai] = None;
            rmap[bi] = None;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::CqBuilder;
    use wireframe_graph::{Dictionary, GraphBuilder};

    fn dict() -> Dictionary {
        let mut b = GraphBuilder::new();
        for p in ["A", "B", "C", "D"] {
            b.add("x", p, "y");
        }
        b.build().dictionary().clone()
    }

    fn build(patterns: &[(&str, &str, &str)]) -> ConjunctiveQuery {
        let d = dict();
        let mut b = CqBuilder::new(&d);
        for (s, p, o) in patterns {
            b.pattern(s, p, o).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn renamed_variables_are_equivalent() {
        let a = build(&[("?x", "A", "?y"), ("?y", "B", "?z")]);
        let b = build(&[("?u", "A", "?v"), ("?v", "B", "?w")]);
        assert!(equivalent(&a, &b));
        assert_eq!(signature(&a), signature(&b));
    }

    #[test]
    fn reordered_patterns_are_equivalent() {
        let a = build(&[("?x", "A", "?y"), ("?x", "B", "?z")]);
        let b = build(&[("?x", "B", "?z"), ("?x", "A", "?y")]);
        assert!(equivalent(&a, &b));
    }

    #[test]
    fn different_labels_are_not_equivalent() {
        let a = build(&[("?x", "A", "?y"), ("?y", "B", "?z")]);
        let b = build(&[("?x", "A", "?y"), ("?y", "C", "?z")]);
        assert!(!equivalent(&a, &b));
    }

    #[test]
    fn direction_matters() {
        let a = build(&[("?x", "A", "?y")]);
        let b = build(&[("?y", "A", "?x")]);
        // A single edge is symmetric under renaming, so these ARE equivalent…
        assert!(equivalent(&a, &b));
        // …but a chain and its reversal with distinct labels are not.
        let c = build(&[("?x", "A", "?y"), ("?y", "B", "?z")]);
        let d = build(&[("?x", "B", "?y"), ("?y", "A", "?z")]);
        assert!(!equivalent(&c, &d));
    }

    #[test]
    fn star_spoke_swap_is_equivalent() {
        let a = build(&[("?h", "A", "?l1"), ("?h", "B", "?l2"), ("?h", "C", "?l3")]);
        let b = build(&[("?h", "C", "?x"), ("?h", "A", "?y"), ("?h", "B", "?z")]);
        assert!(equivalent(&a, &b));
    }

    #[test]
    fn diamond_vs_square_of_same_labels() {
        // Diamond: x->y, x->z, y->w, z->w. Chain-square: x->y->w<-z<-x is the
        // same shape; a genuinely different wiring (a path) must differ.
        let diamond = build(&[
            ("?x", "A", "?y"),
            ("?x", "B", "?z"),
            ("?y", "C", "?w"),
            ("?z", "D", "?w"),
        ]);
        let path = build(&[
            ("?x", "A", "?y"),
            ("?y", "B", "?z"),
            ("?z", "C", "?w"),
            ("?w", "D", "?v"),
        ]);
        assert!(!equivalent(&diamond, &path));
    }

    #[test]
    fn distinct_flag_and_projection_participate() {
        let d = dict();
        let mut b1 = CqBuilder::new(&d);
        b1.project("?x");
        b1.pattern("?x", "A", "?y").unwrap();
        let q1 = b1.build().unwrap();
        let mut b2 = CqBuilder::new(&d);
        b2.project("?y");
        b2.pattern("?x", "A", "?y").unwrap();
        let q2 = b2.build().unwrap();
        assert!(
            !equivalent(&q1, &q2),
            "projecting the source vs the target differs"
        );

        let mut b3 = CqBuilder::new(&d);
        b3.distinct();
        b3.project("?x");
        b3.pattern("?x", "A", "?y").unwrap();
        let q3 = b3.build().unwrap();
        assert!(!equivalent(&q1, &q3), "DISTINCT is part of the signature");
    }

    #[test]
    fn plan_cache_key_distinguishes_projection_order() {
        let d = dict();
        let build_proj = |proj: [&str; 2]| {
            let mut b = CqBuilder::new(&d);
            for p in proj {
                b.project(p);
            }
            b.pattern("?x", "A", "?y").unwrap();
            b.pattern("?y", "B", "?z").unwrap();
            b.build().unwrap()
        };
        let xz = build_proj(["x", "z"]);
        let zx = build_proj(["z", "x"]);
        // The miner's signature deduplicates them…
        assert_eq!(signature(&xz), signature(&zx));
        // …but a plan cache must not: the column orders differ.
        assert_ne!(plan_cache_key(&xz), plan_cache_key(&zx));
        // Same text-level query still shares one key.
        assert_eq!(plan_cache_key(&xz), plan_cache_key(&build_proj(["x", "z"])));
    }

    #[test]
    fn plan_cache_key_distinguishes_orientation() {
        // `?x :A ?y` projecting (x, y) vs `?y :A ?x` projecting (x, y): the
        // signatures agree (isomorphic), but x is the source in one and the
        // target in the other — a cache hit would swap columns.
        let d = dict();
        let mut b1 = CqBuilder::new(&d);
        b1.project("x");
        b1.project("y");
        b1.pattern("?x", "A", "?y").unwrap();
        let q1 = b1.build().unwrap();
        let mut b2 = CqBuilder::new(&d);
        b2.project("x");
        b2.project("y");
        b2.pattern("?y", "A", "?x").unwrap();
        let q2 = b2.build().unwrap();
        assert!(equivalent(&q1, &q2));
        assert_ne!(plan_cache_key(&q1), plan_cache_key(&q2));
    }

    #[test]
    fn plan_cache_key_still_merges_reordered_patterns() {
        // Same explicit projection, pattern order swapped: one cache entry.
        let d = dict();
        let build_ordered = |patterns: [(&str, &str, &str); 2]| {
            let mut b = CqBuilder::new(&d);
            b.project("x");
            b.project("y");
            for (s, p, o) in patterns {
                b.pattern(s, p, o).unwrap();
            }
            b.build().unwrap()
        };
        let a = build_ordered([("?x", "A", "?y"), ("?x", "B", "?z")]);
        let b = build_ordered([("?x", "B", "?z"), ("?x", "A", "?y")]);
        assert_eq!(plan_cache_key(&a), plan_cache_key(&b));
    }

    #[test]
    fn isomorphic_agrees_with_structural_equality() {
        // Renamed + reordered with matching explicit projection order.
        let d = dict();
        let build_named = |proj: &[&str], pats: &[(&str, &str, &str)]| {
            let mut b = CqBuilder::new(&d);
            for p in proj {
                b.project(p);
            }
            for (s, p, o) in pats {
                b.pattern(s, p, o).unwrap();
            }
            b.build().unwrap()
        };
        let a = build_named(&["x", "z"], &[("?x", "A", "?y"), ("?y", "B", "?z")]);
        let b = build_named(&["u", "w"], &[("?v", "B", "?w"), ("?u", "A", "?v")]);
        assert!(isomorphic(&a, &b));
        // Swapped projection order is NOT isomorphic under the ordered
        // correspondence.
        let c = build_named(&["z", "x"], &[("?x", "A", "?y"), ("?y", "B", "?z")]);
        assert!(!isomorphic(&a, &c));
        // Different labels are not isomorphic.
        let e = build_named(&["x", "z"], &[("?x", "A", "?y"), ("?y", "C", "?z")]);
        assert!(!isomorphic(&a, &e));
    }

    #[test]
    fn colour_refinement_gap_is_caught_by_isomorphic() {
        // The classic 1-WL failure: a directed 6-cycle and two disjoint
        // directed triangles over one predicate refine to identical colours,
        // so their plan-cache keys collide — but they are not isomorphic
        // (one is connected, the other is not), and a prepared-query cache
        // must not conflate them.
        let d = dict();
        let mut b6 = CqBuilder::new(&d);
        for i in 0..6 {
            b6.pattern(&format!("?v{i}"), "A", &format!("?v{}", (i + 1) % 6))
                .unwrap();
        }
        let cycle6 = b6.build().unwrap();

        let mut b33 = CqBuilder::new(&d);
        for i in 0..3 {
            b33.pattern(&format!("?s{i}"), "A", &format!("?s{}", (i + 1) % 3))
                .unwrap();
        }
        for i in 0..3 {
            b33.pattern(&format!("?t{i}"), "A", &format!("?t{}", (i + 1) % 3))
                .unwrap();
        }
        let triangles = b33.build().unwrap();

        assert_eq!(
            plan_cache_key(&cycle6),
            plan_cache_key(&triangles),
            "1-WL cannot separate these (that is the point of this test)"
        );
        assert!(!isomorphic(&cycle6, &triangles));
        assert!(isomorphic(&cycle6, &cycle6));
    }

    #[test]
    fn constants_participate() {
        let d = dict();
        let mut b1 = CqBuilder::new(&d);
        b1.pattern("?a", "A", "x").unwrap();
        let q1 = b1.build().unwrap();
        let mut b2 = CqBuilder::new(&d);
        b2.pattern("?a", "A", "y").unwrap();
        let q2 = b2.build().unwrap();
        assert!(!equivalent(&q1, &q2));
    }

    #[test]
    fn footprints_are_sorted_deduped_and_intersect_correctly() {
        let d = dict();
        let mut b = CqBuilder::new(&d);
        b.pattern("?x", "B", "?y").unwrap();
        b.pattern("?y", "A", "?z").unwrap();
        b.pattern("?z", "B", "?w").unwrap();
        let q = b.build().unwrap();
        let fp = predicate_footprint(&q);
        assert_eq!(fp.len(), 2, "duplicate predicate B collapses");
        assert!(fp.windows(2).all(|w| w[0] < w[1]), "ascending");
        let a = d.predicate_id("A").unwrap();
        let c = d.predicate_id("C").unwrap();
        assert!(footprints_intersect(&fp, &[a]));
        assert!(!footprints_intersect(&fp, &[c]));
        assert!(!footprints_intersect(&fp, &[]));
        assert!(!footprints_intersect(&[], &[]));

        // Isomorphic variants (renamed, reordered) share the footprint.
        let mut b2 = CqBuilder::new(&d);
        b2.pattern("?q", "A", "?r").unwrap();
        b2.pattern("?p", "B", "?q").unwrap();
        b2.pattern("?r", "B", "?s").unwrap();
        let q2 = b2.build().unwrap();
        assert_eq!(fp, predicate_footprint(&q2));
    }
}

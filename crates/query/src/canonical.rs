//! Canonical forms and signatures of conjunctive queries.
//!
//! The query miner samples template instantiations; many of them are the same
//! query up to variable renaming or pattern reordering (e.g. a snowflake whose
//! two spokes swap places). A canonical signature lets the miner — and any
//! workload cache — deduplicate such queries cheaply. Two queries with the
//! same signature are isomorphic *as labeled query graphs* (same pattern
//! multiset under a consistent variable renaming); the signature is computed
//! by iterative partition refinement over the query graph, the standard
//! colour-refinement approach, which is exact for the tree-shaped and
//! single-cycle queries used throughout this workspace.

use std::collections::BTreeMap;

use crate::cq::ConjunctiveQuery;
use crate::term::{Term, Var};

/// A canonical signature of a query's structure and labels.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QuerySignature(String);

impl QuerySignature {
    /// The signature as a string (stable across runs; suitable as a map key).
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

/// Computes the canonical signature of `query`.
pub fn signature(query: &ConjunctiveQuery) -> QuerySignature {
    // Initial colour of a variable: multiset of (direction, predicate) of its
    // incident patterns, plus how often it occurs as subject/object of each.
    let mut colors: Vec<String> = (0..query.num_vars() as u32)
        .map(|v| initial_color(query, Var(v)))
        .collect();

    // Refine: a variable's colour becomes (own colour, sorted multiset of
    // (edge descriptor, neighbour colour)). Iterate as many times as there are
    // variables — enough for colour propagation across any simple query graph.
    for _ in 0..query.num_vars().max(1) {
        let mut next = Vec::with_capacity(colors.len());
        for v in 0..query.num_vars() as u32 {
            let v = Var(v);
            let mut neighbour_part: Vec<String> = Vec::new();
            for p in query.patterns() {
                let (s, o) = (p.subject, p.object);
                match (s, o) {
                    (Term::Var(a), Term::Var(b)) if a == v && b == v => {
                        neighbour_part.push(format!("loop:p{}", p.predicate.0));
                    }
                    (Term::Var(a), Term::Var(b)) if a == v => {
                        neighbour_part.push(format!(
                            "out:p{}:{}",
                            p.predicate.0,
                            colors[b.index()]
                        ));
                    }
                    (Term::Var(a), Term::Var(b)) if b == v => {
                        neighbour_part.push(format!("in:p{}:{}", p.predicate.0, colors[a.index()]));
                    }
                    (Term::Var(a), Term::Const(c)) if a == v => {
                        neighbour_part.push(format!("out-const:p{}:n{}", p.predicate.0, c.0));
                    }
                    (Term::Const(c), Term::Var(b)) if b == v => {
                        neighbour_part.push(format!("in-const:p{}:n{}", p.predicate.0, c.0));
                    }
                    _ => {}
                }
            }
            neighbour_part.sort();
            next.push(format!(
                "({})[{}]",
                colors[v.index()],
                neighbour_part.join(",")
            ));
        }
        // Compress colours to small dense names, assigned by the sorted order
        // of the expanded colour strings so the naming is independent of the
        // query's variable numbering.
        let mut distinct = next.clone();
        distinct.sort();
        distinct.dedup();
        let rename: BTreeMap<&String, usize> =
            distinct.iter().enumerate().map(|(i, c)| (c, i)).collect();
        colors = next.iter().map(|c| format!("c{}", rename[c])).collect();
    }

    // The signature: the sorted multiset of pattern descriptors under the
    // final colours, plus the sorted multiset of projected-variable colours
    // and the DISTINCT flag.
    let mut edges: Vec<String> = query
        .patterns()
        .iter()
        .map(|p| {
            let end = |t: Term| match t {
                Term::Var(v) => colors[v.index()].clone(),
                Term::Const(c) => format!("n{}", c.0),
            };
            format!("{}--p{}-->{}", end(p.subject), p.predicate.0, end(p.object))
        })
        .collect();
    edges.sort();
    let mut projection: Vec<String> = query
        .projection()
        .iter()
        .map(|v| colors[v.index()].clone())
        .collect();
    projection.sort();
    QuerySignature(format!(
        "distinct={} edges=[{}] proj=[{}]",
        query.distinct(),
        edges.join(";"),
        projection.join(";")
    ))
}

fn initial_color(query: &ConjunctiveQuery, v: Var) -> String {
    let mut parts: Vec<String> = Vec::new();
    for p in query.patterns() {
        if p.subject.as_var() == Some(v) {
            parts.push(format!("s:p{}", p.predicate.0));
        }
        if p.object.as_var() == Some(v) {
            parts.push(format!("o:p{}", p.predicate.0));
        }
    }
    parts.sort();
    let projected = query.projection().contains(&v);
    format!("proj={projected};{}", parts.join(","))
}

/// Whether two queries have the same canonical signature (structurally
/// equivalent up to variable renaming and pattern order).
pub fn equivalent(a: &ConjunctiveQuery, b: &ConjunctiveQuery) -> bool {
    signature(a) == signature(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::CqBuilder;
    use wireframe_graph::{Dictionary, GraphBuilder};

    fn dict() -> Dictionary {
        let mut b = GraphBuilder::new();
        for p in ["A", "B", "C", "D"] {
            b.add("x", p, "y");
        }
        b.build().dictionary().clone()
    }

    fn build(patterns: &[(&str, &str, &str)]) -> ConjunctiveQuery {
        let d = dict();
        let mut b = CqBuilder::new(&d);
        for (s, p, o) in patterns {
            b.pattern(s, p, o).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn renamed_variables_are_equivalent() {
        let a = build(&[("?x", "A", "?y"), ("?y", "B", "?z")]);
        let b = build(&[("?u", "A", "?v"), ("?v", "B", "?w")]);
        assert!(equivalent(&a, &b));
        assert_eq!(signature(&a), signature(&b));
    }

    #[test]
    fn reordered_patterns_are_equivalent() {
        let a = build(&[("?x", "A", "?y"), ("?x", "B", "?z")]);
        let b = build(&[("?x", "B", "?z"), ("?x", "A", "?y")]);
        assert!(equivalent(&a, &b));
    }

    #[test]
    fn different_labels_are_not_equivalent() {
        let a = build(&[("?x", "A", "?y"), ("?y", "B", "?z")]);
        let b = build(&[("?x", "A", "?y"), ("?y", "C", "?z")]);
        assert!(!equivalent(&a, &b));
    }

    #[test]
    fn direction_matters() {
        let a = build(&[("?x", "A", "?y")]);
        let b = build(&[("?y", "A", "?x")]);
        // A single edge is symmetric under renaming, so these ARE equivalent…
        assert!(equivalent(&a, &b));
        // …but a chain and its reversal with distinct labels are not.
        let c = build(&[("?x", "A", "?y"), ("?y", "B", "?z")]);
        let d = build(&[("?x", "B", "?y"), ("?y", "A", "?z")]);
        assert!(!equivalent(&c, &d));
    }

    #[test]
    fn star_spoke_swap_is_equivalent() {
        let a = build(&[("?h", "A", "?l1"), ("?h", "B", "?l2"), ("?h", "C", "?l3")]);
        let b = build(&[("?h", "C", "?x"), ("?h", "A", "?y"), ("?h", "B", "?z")]);
        assert!(equivalent(&a, &b));
    }

    #[test]
    fn diamond_vs_square_of_same_labels() {
        // Diamond: x->y, x->z, y->w, z->w. Chain-square: x->y->w<-z<-x is the
        // same shape; a genuinely different wiring (a path) must differ.
        let diamond = build(&[
            ("?x", "A", "?y"),
            ("?x", "B", "?z"),
            ("?y", "C", "?w"),
            ("?z", "D", "?w"),
        ]);
        let path = build(&[
            ("?x", "A", "?y"),
            ("?y", "B", "?z"),
            ("?z", "C", "?w"),
            ("?w", "D", "?v"),
        ]);
        assert!(!equivalent(&diamond, &path));
    }

    #[test]
    fn distinct_flag_and_projection_participate() {
        let d = dict();
        let mut b1 = CqBuilder::new(&d);
        b1.project("?x");
        b1.pattern("?x", "A", "?y").unwrap();
        let q1 = b1.build().unwrap();
        let mut b2 = CqBuilder::new(&d);
        b2.project("?y");
        b2.pattern("?x", "A", "?y").unwrap();
        let q2 = b2.build().unwrap();
        assert!(
            !equivalent(&q1, &q2),
            "projecting the source vs the target differs"
        );

        let mut b3 = CqBuilder::new(&d);
        b3.distinct();
        b3.project("?x");
        b3.pattern("?x", "A", "?y").unwrap();
        let q3 = b3.build().unwrap();
        assert!(!equivalent(&q1, &q3), "DISTINCT is part of the signature");
    }

    #[test]
    fn constants_participate() {
        let d = dict();
        let mut b1 = CqBuilder::new(&d);
        b1.pattern("?a", "A", "x").unwrap();
        let q1 = b1.build().unwrap();
        let mut b2 = CqBuilder::new(&d);
        b2.pattern("?a", "A", "y").unwrap();
        let q2 = b2.build().unwrap();
        assert!(!equivalent(&q1, &q2));
    }
}

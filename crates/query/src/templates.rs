//! Query templates used by the paper's micro-benchmark.
//!
//! The paper mines its workload from two templates with placeholders for the
//! edge labels (Section 5): the nine-edge *snowflake* CQ_S of Figure 3 and the
//! four-edge *diamond* CQ_D of Figure 4. These constructors instantiate the
//! templates with concrete predicate labels; the query miner in
//! `wireframe-datagen` searches for label combinations that yield non-empty
//! queries.

use wireframe_graph::Dictionary;

use crate::cq::{ConjunctiveQuery, CqBuilder};
use crate::error::QueryError;

/// Variable names of the snowflake template, in the order used by
/// [`snowflake`]: the hub `x`, its three spokes `m`, `y`, `z`, and the six
/// leaves `a`, `b`, `c`, `d`, `e`, `f`.
pub const SNOWFLAKE_VARS: [&str; 10] = ["x", "m", "y", "z", "a", "b", "c", "d", "e", "f"];

/// Variable names of the diamond template, in the order used by [`diamond`].
pub const DIAMOND_VARS: [&str; 4] = ["x", "y", "z", "w"];

/// Instantiates the paper's snowflake template CQ_S (Figure 3) with nine edge
/// labels. The structure is a depth-two tree:
///
/// ```text
///         x
///   p1  /  | p2 \  p3
///      m   y     z
/// p4 / \p5 |p6\p7 |p8\p9
///    a  b  c  d   e  f
/// ```
///
/// Edge `i` (1-based) carries `labels[i-1]`, matching Table 1's
/// "Snowflake-shaped Queries (1/2/.../9)" label lists.
pub fn snowflake(
    dictionary: &Dictionary,
    labels: &[&str; 9],
) -> Result<ConjunctiveQuery, QueryError> {
    let edges: [(&str, &str); 9] = [
        ("?x", "?m"),
        ("?x", "?y"),
        ("?x", "?z"),
        ("?m", "?a"),
        ("?m", "?b"),
        ("?y", "?c"),
        ("?y", "?d"),
        ("?z", "?e"),
        ("?z", "?f"),
    ];
    let mut b = CqBuilder::new(dictionary);
    b.distinct();
    for v in SNOWFLAKE_VARS {
        b.project(v);
    }
    for (i, (s, o)) in edges.iter().enumerate() {
        b.pattern(s, labels[i], o)?;
    }
    b.build()
}

/// Instantiates the paper's diamond template CQ_D (Figure 4) with four edge
/// labels. The structure is the 4-cycle
///
/// ```text
///      x
///  p1 / \ p2
///    y   z
///  p3 \ / p4
///      w
/// ```
///
/// i.e. `?x p1 ?y . ?x p2 ?z . ?y p3 ?w . ?z p4 ?w`, matching Table 1's
/// "Diamond-shaped Queries (1/2/3/4)" label lists.
pub fn diamond(
    dictionary: &Dictionary,
    labels: &[&str; 4],
) -> Result<ConjunctiveQuery, QueryError> {
    let mut b = CqBuilder::new(dictionary);
    b.distinct();
    for v in DIAMOND_VARS {
        b.project(v);
    }
    b.pattern("?x", labels[0], "?y")?;
    b.pattern("?x", labels[1], "?z")?;
    b.pattern("?y", labels[2], "?w")?;
    b.pattern("?z", labels[3], "?w")?;
    b.build()
}

/// Builds a chain query `?v0 p1 ?v1 . ?v1 p2 ?v2 . …` of arbitrary length
/// (the running example CQ_C of Figure 1 is the 3-edge instance).
pub fn chain(dictionary: &Dictionary, labels: &[&str]) -> Result<ConjunctiveQuery, QueryError> {
    if labels.is_empty() {
        return Err(QueryError::EmptyQuery);
    }
    let mut b = CqBuilder::new(dictionary);
    for i in 0..=labels.len() {
        b.project(&format!("v{i}"));
    }
    for (i, label) in labels.iter().enumerate() {
        b.pattern(&format!("?v{i}"), label, &format!("?v{}", i + 1))?;
    }
    b.build()
}

/// Builds a directed cycle query
/// `?v0 p1 ?v1 . ?v1 p2 ?v2 . … ?v{n-1} pn ?v0`: three labels make the
/// triangle the worst-case-optimal engine's bench lane leans on, four the
/// directed 4-cycle. One label degenerates to the self-loop pattern
/// `?v0 p1 ?v0`, two to a back-and-forth digon — both legal, both cyclic.
pub fn cycle(dictionary: &Dictionary, labels: &[&str]) -> Result<ConjunctiveQuery, QueryError> {
    if labels.is_empty() {
        return Err(QueryError::EmptyQuery);
    }
    let mut b = CqBuilder::new(dictionary);
    for i in 0..labels.len() {
        b.project(&format!("v{i}"));
    }
    for (i, label) in labels.iter().enumerate() {
        let next = (i + 1) % labels.len();
        b.pattern(&format!("?v{i}"), label, &format!("?v{next}"))?;
    }
    b.build()
}

/// Builds a star query with one hub and one leaf per label:
/// `?hub p1 ?v1 . ?hub p2 ?v2 . …`.
pub fn star(dictionary: &Dictionary, labels: &[&str]) -> Result<ConjunctiveQuery, QueryError> {
    if labels.is_empty() {
        return Err(QueryError::EmptyQuery);
    }
    let mut b = CqBuilder::new(dictionary);
    b.project("hub");
    for i in 0..labels.len() {
        b.project(&format!("v{i}"));
    }
    for (i, label) in labels.iter().enumerate() {
        b.pattern("?hub", label, &format!("?v{i}"))?;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query_graph::{QueryGraph, Shape};
    use wireframe_graph::GraphBuilder;

    fn dict() -> Dictionary {
        let mut b = GraphBuilder::new();
        for p in [
            "diedIn",
            "influences",
            "actedIn",
            "owns",
            "wasCreatedOnDate",
            "created",
            "hasDuration",
            "livesIn",
            "isCitizenOf",
            "isLocatedIn",
            "linksTo",
        ] {
            b.add("a", p, "b");
        }
        b.build().dictionary().clone()
    }

    #[test]
    fn snowflake_is_snowflake_shaped() {
        let d = dict();
        let q = snowflake(
            &d,
            &[
                "diedIn",
                "influences",
                "actedIn",
                "owns",
                "wasCreatedOnDate",
                "actedIn",
                "created",
                "hasDuration",
                "wasCreatedOnDate",
            ],
        )
        .unwrap();
        assert_eq!(q.num_patterns(), 9);
        assert_eq!(q.num_vars(), 10);
        assert!(q.distinct());
        let g = QueryGraph::new(&q);
        assert!(g.is_acyclic());
        assert!(g.is_connected());
        assert_eq!(g.shape(), Shape::Snowflake);
    }

    #[test]
    fn diamond_is_a_cycle() {
        let d = dict();
        let q = diamond(&d, &["livesIn", "isCitizenOf", "isLocatedIn", "linksTo"]).unwrap();
        assert_eq!(q.num_patterns(), 4);
        assert_eq!(q.num_vars(), 4);
        let g = QueryGraph::new(&q);
        assert!(g.is_cyclic());
        assert_eq!(g.shape(), Shape::Cycle);
    }

    #[test]
    fn chain_template() {
        let d = dict();
        let q = chain(&d, &["diedIn", "influences", "actedIn"]).unwrap();
        assert_eq!(q.num_patterns(), 3);
        assert_eq!(q.num_vars(), 4);
        assert_eq!(QueryGraph::new(&q).shape(), Shape::Chain);
    }

    #[test]
    fn star_template() {
        let d = dict();
        let q = star(&d, &["diedIn", "influences", "actedIn"]).unwrap();
        assert_eq!(QueryGraph::new(&q).shape(), Shape::Star);
        assert_eq!(q.projection().len(), 4);
    }

    #[test]
    fn cycle_template() {
        let d = dict();
        let triangle = cycle(&d, &["diedIn", "influences", "actedIn"]).unwrap();
        assert_eq!(triangle.num_patterns(), 3);
        assert_eq!(triangle.num_vars(), 3);
        let g = QueryGraph::new(&triangle);
        assert!(g.is_cyclic());
        assert_eq!(g.shape(), Shape::Cycle);

        let square = cycle(&d, &["diedIn", "influences", "actedIn", "owns"]).unwrap();
        assert_eq!(square.num_patterns(), 4);
        assert_eq!(square.num_vars(), 4);
        assert!(QueryGraph::new(&square).is_cyclic());

        let loop_q = cycle(&d, &["linksTo"]).unwrap();
        assert_eq!(loop_q.num_vars(), 1, "one label closes on itself");
    }

    #[test]
    fn templates_reject_unknown_labels() {
        let d = dict();
        assert!(chain(&d, &["missing"]).is_err());
        assert!(diamond(&d, &["livesIn", "missing", "isLocatedIn", "linksTo"]).is_err());
    }

    #[test]
    fn empty_label_lists_rejected() {
        let d = dict();
        assert!(matches!(chain(&d, &[]), Err(QueryError::EmptyQuery)));
        assert!(matches!(star(&d, &[]), Err(QueryError::EmptyQuery)));
    }
}

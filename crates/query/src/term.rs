//! Query variables and terms.

use std::fmt;

use wireframe_graph::NodeId;

/// A query variable, identified by a dense index within one query.
/// Variable `Var(0)` is the first variable mentioned in the query, and so on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    /// Returns the variable's index, suitable for indexing per-variable tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

/// One end of a triple pattern: either a query variable or a constant node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Term {
    /// A binding variable.
    Var(Var),
    /// A constant, already dictionary-encoded node.
    Const(NodeId),
}

impl Term {
    /// Returns the variable if this term is one.
    #[inline]
    pub fn as_var(self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// Returns the constant if this term is one.
    #[inline]
    pub fn as_const(self) -> Option<NodeId> {
        match self {
            Term::Const(n) => Some(n),
            Term::Var(_) => None,
        }
    }

    /// Whether this term is a variable.
    #[inline]
    pub fn is_var(self) -> bool {
        matches!(self, Term::Var(_))
    }
}

impl From<Var> for Term {
    fn from(v: Var) -> Self {
        Term::Var(v)
    }
}

impl From<NodeId> for Term {
    fn from(n: NodeId) -> Self {
        Term::Const(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_accessors() {
        let v = Var(3);
        assert_eq!(v.index(), 3);
        assert_eq!(v.to_string(), "?3");
    }

    #[test]
    fn term_accessors() {
        let t: Term = Var(1).into();
        assert!(t.is_var());
        assert_eq!(t.as_var(), Some(Var(1)));
        assert_eq!(t.as_const(), None);

        let c: Term = NodeId(9).into();
        assert!(!c.is_var());
        assert_eq!(c.as_const(), Some(NodeId(9)));
        assert_eq!(c.as_var(), None);
    }
}

//! # wireframe-query — the conjunctive-query model
//!
//! Types and analyses for SPARQL conjunctive queries (CQs), shared by the
//! Wireframe answer-graph engine and the baseline engines:
//!
//! * [`ConjunctiveQuery`], [`TriplePattern`], [`Term`], [`Var`] — the query
//!   representation after resolving labels against the graph dictionary,
//! * [`parse_query`] — a parser for the SPARQL CQ fragment, and
//!   [`to_sparql`] — the inverse renderer (used where queries travel as
//!   text, e.g. the network serving layer),
//! * [`CqBuilder`] — programmatic construction,
//! * [`QueryGraph`], [`Shape`] — the structural (query-graph) view used by the
//!   planners: connectivity, cycle detection, fundamental cycles, shape
//!   classification,
//! * [`EmbeddingSet`] — the result type shared by all engines,
//! * [`templates`] — the paper's CQ_S (snowflake) and CQ_D (diamond) templates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canonical;
mod cq;
mod error;
mod parser;
mod query_graph;
mod render;
mod results;
pub mod templates;
mod term;

pub use cq::{const_term, ConjunctiveQuery, CqBuilder, TriplePattern};
pub use error::QueryError;
pub use parser::parse_query;
pub use query_graph::{QueryEdge, QueryGraph, Shape};
pub use render::to_sparql;
pub use results::EmbeddingSet;
pub use term::{Term, Var};

//! Error type for query construction and parsing.

use std::fmt;

/// Errors produced while building or parsing conjunctive queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// Syntax error in the SPARQL fragment.
    Parse(String),
    /// A predicate label that does not exist in the graph's dictionary.
    UnknownPredicate(String),
    /// A constant node label that does not exist in the graph's dictionary.
    UnknownNode(String),
    /// A variable used but never declared (internal constructor misuse).
    UnknownVariable(String),
    /// The query has no triple patterns.
    EmptyQuery,
    /// The query's query graph is not connected; the engines require a single
    /// connected component (a cross product of components is out of scope).
    Disconnected,
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse(msg) => write!(f, "parse error: {msg}"),
            QueryError::UnknownPredicate(p) => write!(f, "unknown predicate label: {p}"),
            QueryError::UnknownNode(n) => write!(f, "unknown node label: {n}"),
            QueryError::UnknownVariable(v) => write!(f, "unknown variable: {v}"),
            QueryError::EmptyQuery => write!(f, "query has no triple patterns"),
            QueryError::Disconnected => write!(f, "query graph is not connected"),
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(QueryError::Parse("x".into()).to_string().contains("parse"));
        assert!(QueryError::UnknownPredicate("p".into())
            .to_string()
            .contains("p"));
        assert!(QueryError::EmptyQuery.to_string().contains("no triple"));
        assert!(QueryError::Disconnected.to_string().contains("connected"));
    }
}

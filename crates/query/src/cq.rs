//! The conjunctive-query model.
//!
//! A SPARQL conjunctive query (CQ) is a set of triple patterns over binding
//! variables and constants, plus a projection list. Its *query graph* has the
//! variables as nodes and the patterns as labeled edges — the structure both
//! planners reason over.

use std::collections::HashMap;
use std::fmt;

use wireframe_graph::{Dictionary, NodeId, PredId};

use crate::error::QueryError;
use crate::term::{Term, Var};

/// One triple pattern `subject --predicate--> object` of a CQ, with the
/// predicate already resolved against the graph's dictionary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TriplePattern {
    /// The subject term (variable or constant).
    pub subject: Term,
    /// The (constant) predicate of the pattern.
    pub predicate: PredId,
    /// The object term (variable or constant).
    pub object: Term,
}

impl TriplePattern {
    /// Creates a new pattern.
    pub fn new(subject: impl Into<Term>, predicate: PredId, object: impl Into<Term>) -> Self {
        TriplePattern {
            subject: subject.into(),
            predicate,
            object: object.into(),
        }
    }

    /// The variables appearing in this pattern (0, 1 or 2 of them).
    pub fn variables(&self) -> impl Iterator<Item = Var> {
        [self.subject.as_var(), self.object.as_var()]
            .into_iter()
            .flatten()
    }

    /// Whether the given variable appears in this pattern.
    pub fn mentions(&self, v: Var) -> bool {
        self.subject.as_var() == Some(v) || self.object.as_var() == Some(v)
    }
}

/// A SPARQL conjunctive query after name resolution: triple patterns over
/// dense variables, a projection list, and the original variable names.
#[derive(Debug, Clone)]
pub struct ConjunctiveQuery {
    patterns: Vec<TriplePattern>,
    projection: Vec<Var>,
    distinct: bool,
    var_names: Vec<String>,
}

impl ConjunctiveQuery {
    /// Creates a query from parts. `var_names[i]` names variable `Var(i)`.
    /// Every variable used by a pattern or the projection must be named.
    pub fn new(
        patterns: Vec<TriplePattern>,
        projection: Vec<Var>,
        distinct: bool,
        var_names: Vec<String>,
    ) -> Result<Self, QueryError> {
        let num_vars = var_names.len() as u32;
        let check = |v: Var| -> Result<(), QueryError> {
            if v.0 >= num_vars {
                Err(QueryError::UnknownVariable(format!("?{}", v.0)))
            } else {
                Ok(())
            }
        };
        for p in &patterns {
            for v in p.variables() {
                check(v)?;
            }
        }
        for &v in &projection {
            check(v)?;
        }
        if patterns.is_empty() {
            return Err(QueryError::EmptyQuery);
        }
        Ok(ConjunctiveQuery {
            patterns,
            projection,
            distinct,
            var_names,
        })
    }

    /// The triple patterns (the query's edges), in declaration order.
    pub fn patterns(&self) -> &[TriplePattern] {
        &self.patterns
    }

    /// Number of triple patterns.
    pub fn num_patterns(&self) -> usize {
        self.patterns.len()
    }

    /// The projected variables, in SELECT order.
    pub fn projection(&self) -> &[Var] {
        &self.projection
    }

    /// Whether the query is a `SELECT DISTINCT`.
    pub fn distinct(&self) -> bool {
        self.distinct
    }

    /// Number of distinct variables.
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// All variables of the query.
    pub fn variables(&self) -> impl Iterator<Item = Var> + '_ {
        (0..self.var_names.len() as u32).map(Var)
    }

    /// The source name of a variable (without the leading `?`).
    pub fn var_name(&self, v: Var) -> &str {
        &self.var_names[v.index()]
    }

    /// Looks up a variable by its source name (without the leading `?`).
    pub fn var_by_name(&self, name: &str) -> Option<Var> {
        self.var_names
            .iter()
            .position(|n| n == name)
            .map(|i| Var(i as u32))
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        for v in &self.projection {
            write!(f, "?{} ", self.var_name(*v))?;
        }
        write!(f, "WHERE {{ ")?;
        for p in &self.patterns {
            let t = |t: Term| match t {
                Term::Var(v) => format!("?{}", self.var_name(v)),
                Term::Const(n) => format!("<{}>", n.0),
            };
            write!(f, "{} p{} {} . ", t(p.subject), p.predicate.0, t(p.object))?;
        }
        write!(f, "}}")
    }
}

/// Incremental construction of a [`ConjunctiveQuery`] from string-form terms,
/// resolving predicate and constant labels against a [`Dictionary`].
///
/// Terms starting with `?` are variables; anything else is a constant node
/// label that must already exist in the dictionary.
#[derive(Debug)]
pub struct CqBuilder<'d> {
    dictionary: &'d Dictionary,
    patterns: Vec<TriplePattern>,
    var_ids: HashMap<String, Var>,
    var_names: Vec<String>,
    projection: Vec<Var>,
    distinct: bool,
}

impl<'d> CqBuilder<'d> {
    /// Creates a builder resolving labels against `dictionary`.
    pub fn new(dictionary: &'d Dictionary) -> Self {
        CqBuilder {
            dictionary,
            patterns: Vec::new(),
            var_ids: HashMap::new(),
            var_names: Vec::new(),
            projection: Vec::new(),
            distinct: false,
        }
    }

    /// Marks the query as `SELECT DISTINCT`.
    pub fn distinct(&mut self) -> &mut Self {
        self.distinct = true;
        self
    }

    /// Adds a variable to the projection list (with or without leading `?`).
    pub fn project(&mut self, name: &str) -> &mut Self {
        let v = self.variable(name.trim_start_matches('?'));
        self.projection.push(v);
        self
    }

    /// Interns a variable by name (without the leading `?`).
    pub fn variable(&mut self, name: &str) -> Var {
        if let Some(&v) = self.var_ids.get(name) {
            return v;
        }
        let v = Var(self.var_names.len() as u32);
        self.var_ids.insert(name.to_owned(), v);
        self.var_names.push(name.to_owned());
        v
    }

    fn term(&mut self, label: &str) -> Result<Term, QueryError> {
        if let Some(name) = label.strip_prefix('?') {
            if name.is_empty() {
                return Err(QueryError::Parse("empty variable name '?'".into()));
            }
            Ok(Term::Var(self.variable(name)))
        } else {
            let label = label.trim_start_matches(':');
            self.dictionary
                .node_id(label)
                .map(Term::Const)
                .ok_or_else(|| QueryError::UnknownNode(label.to_owned()))
        }
    }

    /// Adds a triple pattern given as string terms and a predicate label.
    /// The predicate label may carry a leading `:` which is ignored.
    pub fn pattern(
        &mut self,
        subject: &str,
        predicate: &str,
        object: &str,
    ) -> Result<&mut Self, QueryError> {
        let predicate = predicate.trim_start_matches(':');
        let p = self
            .dictionary
            .predicate_id(predicate)
            .ok_or_else(|| QueryError::UnknownPredicate(predicate.to_owned()))?;
        let s = self.term(subject)?;
        let o = self.term(object)?;
        self.patterns.push(TriplePattern::new(s, p, o));
        Ok(self)
    }

    /// Adds a pattern whose ends are already resolved terms.
    pub fn pattern_terms(&mut self, subject: Term, predicate: PredId, object: Term) -> &mut Self {
        self.patterns
            .push(TriplePattern::new(subject, predicate, object));
        self
    }

    /// Finishes the query. If no projection was given, all variables are
    /// projected in order of first appearance (SPARQL `SELECT *`).
    pub fn build(self) -> Result<ConjunctiveQuery, QueryError> {
        let projection = if self.projection.is_empty() {
            (0..self.var_names.len() as u32).map(Var).collect()
        } else {
            self.projection
        };
        ConjunctiveQuery::new(self.patterns, projection, self.distinct, self.var_names)
    }
}

/// Convenience: resolves a constant node label to a term, for use with
/// [`CqBuilder::pattern_terms`].
pub fn const_term(dictionary: &Dictionary, label: &str) -> Result<Term, QueryError> {
    dictionary
        .node_id(label)
        .map(|n: NodeId| Term::Const(n))
        .ok_or_else(|| QueryError::UnknownNode(label.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wireframe_graph::GraphBuilder;

    fn dict() -> Dictionary {
        let mut b = GraphBuilder::new();
        b.add("alice", "knows", "bob");
        b.add("bob", "worksAt", "acme");
        b.build().dictionary().clone()
    }

    #[test]
    fn builder_simple_chain() {
        let d = dict();
        let mut b = CqBuilder::new(&d);
        b.pattern("?x", "knows", "?y").unwrap();
        b.pattern("?y", "worksAt", "?z").unwrap();
        let q = b.build().unwrap();
        assert_eq!(q.num_patterns(), 2);
        assert_eq!(q.num_vars(), 3);
        assert_eq!(q.projection().len(), 3, "SELECT * projects all variables");
        assert_eq!(q.var_name(Var(0)), "x");
        assert_eq!(q.var_by_name("z"), Some(Var(2)));
    }

    #[test]
    fn builder_with_constant() {
        let d = dict();
        let mut b = CqBuilder::new(&d);
        b.pattern("?x", "worksAt", "acme").unwrap();
        let q = b.build().unwrap();
        let p = q.patterns()[0];
        assert!(p.subject.is_var());
        assert!(p.object.as_const().is_some());
        assert_eq!(p.variables().count(), 1);
    }

    #[test]
    fn builder_rejects_unknown_predicate() {
        let d = dict();
        let mut b = CqBuilder::new(&d);
        let err = b.pattern("?x", "nonexistent", "?y").unwrap_err();
        assert!(matches!(err, QueryError::UnknownPredicate(_)));
    }

    #[test]
    fn builder_rejects_unknown_constant() {
        let d = dict();
        let mut b = CqBuilder::new(&d);
        let err = b.pattern("?x", "knows", "nobody").unwrap_err();
        assert!(matches!(err, QueryError::UnknownNode(_)));
    }

    #[test]
    fn empty_query_is_rejected() {
        let d = dict();
        let b = CqBuilder::new(&d);
        assert!(matches!(b.build(), Err(QueryError::EmptyQuery)));
    }

    #[test]
    fn explicit_projection_and_distinct() {
        let d = dict();
        let mut b = CqBuilder::new(&d);
        b.distinct();
        b.project("?y");
        b.pattern("?x", "knows", "?y").unwrap();
        let q = b.build().unwrap();
        assert!(q.distinct());
        assert_eq!(q.projection(), &[Var(0)]);
        assert_eq!(q.var_name(q.projection()[0]), "y");
    }

    #[test]
    fn new_rejects_out_of_range_variable() {
        let p = TriplePattern::new(Var(5), PredId(0), Var(0));
        let err = ConjunctiveQuery::new(vec![p], vec![], false, vec!["x".into()]).unwrap_err();
        assert!(matches!(err, QueryError::UnknownVariable(_)));
    }

    #[test]
    fn display_is_parseable_shape() {
        let d = dict();
        let mut b = CqBuilder::new(&d);
        b.pattern("?x", "knows", "?y").unwrap();
        let q = b.build().unwrap();
        let s = q.to_string();
        assert!(s.starts_with("SELECT"));
        assert!(s.contains("?x"));
    }

    #[test]
    fn pattern_mentions() {
        let p = TriplePattern::new(Var(0), PredId(1), Var(2));
        assert!(p.mentions(Var(0)));
        assert!(p.mentions(Var(2)));
        assert!(!p.mentions(Var(1)));
    }

    #[test]
    fn const_term_helper() {
        let d = dict();
        assert!(const_term(&d, "acme").is_ok());
        assert!(const_term(&d, "missing").is_err());
    }
}

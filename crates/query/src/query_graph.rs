//! The query graph: structural analysis of a conjunctive query.
//!
//! The query graph of a CQ has the query's variables as nodes and its triple
//! patterns as (labeled, undirected for structural purposes) edges. Both of
//! Wireframe's planners reason over this structure: the Edgifier walks it to
//! enumerate connected edge orders, the Triangulator needs its cycles, and the
//! evaluation model differs between acyclic and cyclic queries.

use std::collections::VecDeque;

use crate::cq::ConjunctiveQuery;
use crate::term::Var;

/// Coarse classification of a query graph's shape, used by the workload
/// generators and for reporting. The paper's micro-benchmark uses
/// [`Shape::Snowflake`] (acyclic) and [`Shape::Cycle`] (the diamond) queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Shape {
    /// A single path: every variable has degree at most two and there is no cycle.
    Chain,
    /// One center variable adjacent to every pattern; all other variables are leaves.
    Star,
    /// A depth-two tree: a center whose neighbors may have leaf children
    /// (the paper's CQ_S template).
    Snowflake,
    /// Any other acyclic (tree-shaped) query.
    Tree,
    /// A single simple cycle covering every pattern (the paper's CQ_D diamond
    /// template is the 4-cycle).
    Cycle,
    /// Cyclic with additional structure beyond one simple cycle.
    Cyclic,
}

/// One edge of the query graph: a triple pattern viewed structurally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryEdge {
    /// Index of the pattern in [`ConjunctiveQuery::patterns`].
    pub pattern: usize,
    /// Subject-side variable, if the subject is a variable.
    pub subject_var: Option<Var>,
    /// Object-side variable, if the object is a variable.
    pub object_var: Option<Var>,
}

impl QueryEdge {
    /// The variables incident to this edge (0, 1 or 2).
    pub fn vars(&self) -> impl Iterator<Item = Var> {
        [self.subject_var, self.object_var].into_iter().flatten()
    }

    /// The variable at the other end from `v`, for var-var edges.
    /// Returns `None` if `v` is not incident or the other end is a constant.
    pub fn other(&self, v: Var) -> Option<Var> {
        match (self.subject_var, self.object_var) {
            (Some(a), Some(b)) if a == v => Some(b),
            (Some(a), Some(b)) if b == v => Some(a),
            _ => None,
        }
    }

    /// Whether both ends are variables.
    pub fn is_var_var(&self) -> bool {
        self.subject_var.is_some() && self.object_var.is_some()
    }
}

/// Structural view of a conjunctive query.
#[derive(Debug, Clone)]
pub struct QueryGraph {
    num_vars: usize,
    edges: Vec<QueryEdge>,
    /// For each variable, the indexes (into `edges`) of its incident edges.
    incident: Vec<Vec<usize>>,
}

impl QueryGraph {
    /// Builds the query graph of `query`.
    pub fn new(query: &ConjunctiveQuery) -> Self {
        let num_vars = query.num_vars();
        let mut edges = Vec::with_capacity(query.num_patterns());
        let mut incident = vec![Vec::new(); num_vars];
        for (i, p) in query.patterns().iter().enumerate() {
            let e = QueryEdge {
                pattern: i,
                subject_var: p.subject.as_var(),
                object_var: p.object.as_var(),
            };
            for v in e.vars() {
                // A self-loop (?x p ?x) is recorded once per end; dedup here.
                if incident[v.index()].last() != Some(&i) {
                    incident[v.index()].push(i);
                }
            }
            edges.push(e);
        }
        QueryGraph {
            num_vars,
            edges,
            incident,
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The structural edges, indexed like the query's patterns.
    pub fn edges(&self) -> &[QueryEdge] {
        &self.edges
    }

    /// Edges incident to variable `v`.
    pub fn incident_edges(&self, v: Var) -> &[usize] {
        &self.incident[v.index()]
    }

    /// Degree of variable `v` (number of incident patterns).
    pub fn degree(&self, v: Var) -> usize {
        self.incident[v.index()].len()
    }

    /// Variables adjacent to `v` through var-var edges.
    pub fn neighbors(&self, v: Var) -> Vec<Var> {
        let mut out: Vec<Var> = self.incident[v.index()]
            .iter()
            .filter_map(|&e| self.edges[e].other(v))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// A connected greedy variable order: start at the variable with the
    /// smallest `score`, then repeatedly append the smallest-scored unbound
    /// variable sharing a pattern with the bound prefix. Ties break on
    /// variable index, so the order is deterministic. When no unbound
    /// variable touches the prefix (a disconnected query), the next
    /// component is opened at its own minimum — every variable always
    /// appears exactly once.
    ///
    /// This is the generic skeleton worst-case-optimal join engines need: a
    /// caller supplies catalog-derived selectivity estimates as `score` and
    /// gets back an extension order in which every variable (after the
    /// first) is constrained by at least one already-bound pattern end.
    pub fn connected_order(&self, score: impl Fn(Var) -> f64) -> Vec<Var> {
        let pick = |candidates: &mut dyn Iterator<Item = Var>| -> Option<Var> {
            let mut best: Option<(f64, Var)> = None;
            for v in candidates {
                let s = score(v);
                match best {
                    Some((bs, bv)) if (bs, bv.index()) <= (s, v.index()) => {}
                    _ => best = Some((s, v)),
                }
            }
            best.map(|(_, v)| v)
        };
        let mut order: Vec<Var> = Vec::with_capacity(self.num_vars);
        let mut bound = vec![false; self.num_vars];
        while order.len() < self.num_vars {
            let next = pick(&mut (0..self.num_vars as u32).map(Var).filter(|v| {
                !bound[v.index()]
                    && (order.is_empty() || self.neighbors(*v).iter().any(|u| bound[u.index()]))
            }))
            // Disconnected (or fresh) component: open it at its minimum.
            .or_else(|| {
                pick(
                    &mut (0..self.num_vars as u32)
                        .map(Var)
                        .filter(|v| !bound[v.index()]),
                )
            });
            let Some(v) = next else { break };
            bound[v.index()] = true;
            order.push(v);
        }
        order
    }

    /// Whether every pattern is reachable from every other through shared
    /// variables. Single-pattern queries are connected.
    pub fn is_connected(&self) -> bool {
        if self.edges.len() <= 1 {
            return true;
        }
        let mut seen = vec![false; self.edges.len()];
        let mut queue = VecDeque::new();
        seen[0] = true;
        queue.push_back(0usize);
        while let Some(e) = queue.pop_front() {
            for v in self.edges[e].vars() {
                for &f in self.incident_edges(v) {
                    if !seen[f] {
                        seen[f] = true;
                        queue.push_back(f);
                    }
                }
            }
        }
        seen.into_iter().all(|s| s)
    }

    /// Whether the query graph contains a cycle (including two parallel
    /// patterns between the same pair of variables, and self-loops).
    pub fn is_cyclic(&self) -> bool {
        !self.fundamental_cycles().is_empty()
    }

    /// Whether the query is acyclic (tree-shaped). Patterns with constant ends
    /// never create cycles.
    pub fn is_acyclic(&self) -> bool {
        !self.is_cyclic()
    }

    /// Returns one set of fundamental cycles as lists of pattern indexes.
    ///
    /// A spanning forest of the var-var subgraph is grown; every non-tree edge
    /// closes exactly one cycle consisting of that edge plus the tree path
    /// between its endpoints. Self-loops yield single-edge cycles.
    pub fn fundamental_cycles(&self) -> Vec<Vec<usize>> {
        let mut cycles = Vec::new();
        // parent[v] = (parent var, edge index) within the spanning forest.
        let mut parent: Vec<Option<(Var, usize)>> = vec![None; self.num_vars];
        let mut visited = vec![false; self.num_vars];
        let mut depth = vec![0usize; self.num_vars];
        let mut in_tree = vec![false; self.edges.len()];

        for root in 0..self.num_vars as u32 {
            let root = Var(root);
            if visited[root.index()] {
                continue;
            }
            visited[root.index()] = true;
            let mut queue = VecDeque::new();
            queue.push_back(root);
            while let Some(v) = queue.pop_front() {
                for &e in self.incident_edges(v) {
                    let edge = self.edges[e];
                    if !edge.is_var_var() {
                        continue;
                    }
                    if edge.subject_var == edge.object_var {
                        continue; // self-loops handled below
                    }
                    let Some(u) = edge.other(v) else { continue };
                    if !visited[u.index()] {
                        visited[u.index()] = true;
                        parent[u.index()] = Some((v, e));
                        depth[u.index()] = depth[v.index()] + 1;
                        in_tree[e] = true;
                        queue.push_back(u);
                    }
                }
            }
        }

        for (e, edge) in self.edges.iter().enumerate() {
            if !edge.is_var_var() || in_tree[e] {
                continue;
            }
            let (Some(a), Some(b)) = (edge.subject_var, edge.object_var) else {
                continue;
            };
            if a == b {
                cycles.push(vec![e]);
                continue;
            }
            // Walk both endpoints up to their lowest common ancestor.
            let mut path = vec![e];
            let (mut x, mut y) = (a, b);
            let mut left = Vec::new();
            let mut right = Vec::new();
            while depth[x.index()] > depth[y.index()] {
                let (p, pe) = parent[x.index()].expect("non-root must have parent");
                left.push(pe);
                x = p;
            }
            while depth[y.index()] > depth[x.index()] {
                let (p, pe) = parent[y.index()].expect("non-root must have parent");
                right.push(pe);
                y = p;
            }
            while x != y {
                let (px, pex) = parent[x.index()].expect("non-root must have parent");
                let (py, pey) = parent[y.index()].expect("non-root must have parent");
                left.push(pex);
                right.push(pey);
                x = px;
                y = py;
            }
            path.extend(left);
            path.extend(right.into_iter().rev());
            cycles.push(path);
        }
        cycles
    }

    /// Classifies the query graph's shape.
    pub fn shape(&self) -> Shape {
        if self.is_cyclic() {
            // A single simple cycle covering all patterns: every variable has
            // degree 2 and #var-var edges equals #vars touched.
            let all_var_var = self.edges.iter().all(QueryEdge::is_var_var);
            let touched: Vec<Var> = (0..self.num_vars as u32)
                .map(Var)
                .filter(|v| self.degree(*v) > 0)
                .collect();
            let simple_cycle = all_var_var
                && touched.iter().all(|&v| self.degree(v) == 2)
                && self.edges.len() == touched.len()
                && self.is_connected();
            return if simple_cycle {
                Shape::Cycle
            } else {
                Shape::Cyclic
            };
        }
        let degrees: Vec<usize> = (0..self.num_vars as u32)
            .map(|v| self.degree(Var(v)))
            .collect();
        let max_deg = degrees.iter().copied().max().unwrap_or(0);
        let num_edges = self.edges.len();
        if max_deg <= 2 {
            return Shape::Chain;
        }
        // Star: some center is incident to every pattern.
        if degrees.contains(&num_edges) {
            return Shape::Star;
        }
        // Snowflake: a depth-two tree rooted at some branching variable.
        let is_snowflake = (0..self.num_vars as u32)
            .map(Var)
            .any(|center| self.degree(center) > 2 && self.is_depth_two_tree(center));
        if is_snowflake {
            return Shape::Snowflake;
        }
        Shape::Tree
    }

    fn is_depth_two_tree(&self, center: Var) -> bool {
        // Every edge must be incident to the center or to a neighbor of it,
        // and edges between two non-center variables must have exactly one
        // endpoint adjacent to the center (no deeper chains).
        let neighbors = self.neighbors(center);
        for e in &self.edges {
            let vars: Vec<Var> = e.vars().collect();
            if vars.contains(&center) {
                continue;
            }
            let adjacent_ends = vars.iter().filter(|v| neighbors.contains(v)).count();
            if adjacent_ends == 0 {
                return false;
            }
            if vars.len() == 2 && adjacent_ends == 2 {
                // Would connect two branches: still depth two, allowed only if acyclic,
                // but then one end is a leaf of the other — treat as deeper structure.
                return false;
            }
            // An edge from a neighbor to a leaf: fine.
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cq::CqBuilder;
    use wireframe_graph::{Dictionary, GraphBuilder};

    fn dict() -> Dictionary {
        let mut b = GraphBuilder::new();
        for p in ["A", "B", "C", "D", "E", "F", "G", "H", "I"] {
            b.add("n1", p, "n2");
        }
        b.build().dictionary().clone()
    }

    fn build(patterns: &[(&str, &str, &str)]) -> (ConjunctiveQuery, QueryGraph) {
        let d = dict();
        let mut b = CqBuilder::new(&d);
        for (s, p, o) in patterns {
            b.pattern(s, p, o).unwrap();
        }
        let q = b.build().unwrap();
        let g = QueryGraph::new(&q);
        (q, g)
    }

    #[test]
    fn chain_shape() {
        let (_, g) = build(&[("?w", "A", "?x"), ("?x", "B", "?y"), ("?y", "C", "?z")]);
        assert!(g.is_connected());
        assert!(g.is_acyclic());
        assert_eq!(g.shape(), Shape::Chain);
        assert_eq!(g.degree(Var(1)), 2);
        assert_eq!(g.neighbors(Var(1)), vec![Var(0), Var(2)]);
    }

    #[test]
    fn star_shape() {
        let (_, g) = build(&[("?c", "A", "?x"), ("?c", "B", "?y"), ("?c", "C", "?z")]);
        assert_eq!(g.shape(), Shape::Star);
    }

    #[test]
    fn snowflake_shape() {
        // center x -> m, y; m -> a, b; y -> c
        let (_, g) = build(&[
            ("?x", "A", "?m"),
            ("?x", "B", "?y"),
            ("?x", "I", "?n"),
            ("?m", "C", "?a"),
            ("?m", "D", "?b"),
            ("?y", "E", "?c"),
        ]);
        assert!(g.is_acyclic());
        assert_eq!(g.shape(), Shape::Snowflake);
    }

    #[test]
    fn deep_tree_is_not_snowflake() {
        // chain off a star: x -> m -> a -> q (depth 3)
        let (_, g) = build(&[
            ("?x", "A", "?m"),
            ("?x", "B", "?y"),
            ("?x", "C", "?z"),
            ("?m", "D", "?a"),
            ("?a", "E", "?q"),
        ]);
        assert!(g.is_acyclic());
        assert_eq!(g.shape(), Shape::Tree);
    }

    #[test]
    fn diamond_is_simple_cycle() {
        let (_, g) = build(&[
            ("?x", "A", "?y"),
            ("?x", "B", "?z"),
            ("?y", "C", "?w"),
            ("?z", "D", "?w"),
        ]);
        assert!(g.is_cyclic());
        assert_eq!(g.shape(), Shape::Cycle);
        let cycles = g.fundamental_cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(
            cycles[0].len(),
            4,
            "the diamond's one cycle uses all 4 edges"
        );
    }

    #[test]
    fn cycle_with_tail_is_cyclic_not_cycle() {
        let (_, g) = build(&[
            ("?x", "A", "?y"),
            ("?y", "B", "?z"),
            ("?z", "C", "?x"),
            ("?z", "D", "?t"),
        ]);
        assert_eq!(g.shape(), Shape::Cyclic);
    }

    #[test]
    fn parallel_edges_form_a_cycle() {
        let (_, g) = build(&[("?x", "A", "?y"), ("?x", "B", "?y")]);
        assert!(g.is_cyclic());
        let cycles = g.fundamental_cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].len(), 2);
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let (_, g) = build(&[("?x", "A", "?x"), ("?x", "B", "?y")]);
        assert!(g.is_cyclic());
        assert!(g.fundamental_cycles().iter().any(|c| c.len() == 1));
    }

    #[test]
    fn constant_patterns_do_not_create_cycles() {
        let d = dict();
        let mut b = CqBuilder::new(&d);
        b.pattern("?x", "A", "?y").unwrap();
        b.pattern("?x", "B", "n1").unwrap();
        b.pattern("?y", "C", "n1").unwrap();
        let q = b.build().unwrap();
        let g = QueryGraph::new(&q);
        assert!(g.is_acyclic());
        assert!(g.is_connected());
    }

    #[test]
    fn disconnected_query_detected() {
        let (_, g) = build(&[("?a", "A", "?b"), ("?c", "B", "?d")]);
        assert!(!g.is_connected());
    }

    #[test]
    fn single_pattern_is_connected_chain() {
        let (_, g) = build(&[("?a", "A", "?b")]);
        assert!(g.is_connected());
        assert_eq!(g.shape(), Shape::Chain);
    }

    #[test]
    fn pentagon_cycle_detected() {
        let (_, g) = build(&[
            ("?a", "A", "?b"),
            ("?b", "B", "?c"),
            ("?c", "C", "?d"),
            ("?d", "D", "?e"),
            ("?e", "E", "?a"),
        ]);
        assert_eq!(g.shape(), Shape::Cycle);
        assert_eq!(g.fundamental_cycles()[0].len(), 5);
    }

    #[test]
    fn two_cycles_give_two_fundamental_cycles() {
        let (_, g) = build(&[
            ("?a", "A", "?b"),
            ("?b", "B", "?c"),
            ("?c", "C", "?a"),
            ("?c", "D", "?d"),
            ("?d", "E", "?e"),
            ("?e", "F", "?c"),
        ]);
        assert_eq!(g.fundamental_cycles().len(), 2);
        assert_eq!(g.shape(), Shape::Cyclic);
    }

    #[test]
    fn connected_order_extends_from_the_bound_prefix() {
        // Chain w -x- y -z: scoring by reverse index starts at ?z and must
        // then walk the chain (y, x, w) — never jump to a non-neighbor.
        let (_, g) = build(&[("?w", "A", "?x"), ("?x", "B", "?y"), ("?y", "C", "?z")]);
        let order = g.connected_order(|v| -(v.index() as f64));
        assert_eq!(order, vec![Var(3), Var(2), Var(1), Var(0)]);
        // Constant scores tie-break on index.
        assert_eq!(
            g.connected_order(|_| 1.0),
            vec![Var(0), Var(1), Var(2), Var(3)]
        );
        // Every variable appears exactly once on cyclic shapes too.
        let (_, d) = build(&[
            ("?x", "A", "?y"),
            ("?x", "B", "?z"),
            ("?y", "C", "?w"),
            ("?z", "D", "?w"),
        ]);
        let mut order = d.connected_order(|v| v.index() as f64);
        assert_eq!(order.len(), 4);
        order.sort_unstable();
        order.dedup();
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn incident_edges_match_patterns() {
        let (q, g) = build(&[("?x", "A", "?y"), ("?y", "B", "?z")]);
        let y = q.var_by_name("y").unwrap();
        assert_eq!(g.incident_edges(y), &[0, 1]);
        assert_eq!(g.edges()[0].other(y), Some(q.var_by_name("x").unwrap()));
    }
}

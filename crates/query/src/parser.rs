//! Parser for the SPARQL conjunctive-query fragment.
//!
//! Supported grammar (whitespace-separated tokens):
//!
//! ```text
//! query    := SELECT [DISTINCT] (var+ | '*') WHERE '{' pattern ('.' pattern)* ['.'] '}'
//! pattern  := term pred term
//! term     := '?'name | '<'iri'>' | label
//! pred     := [':']label | '<'iri'>'
//! ```
//!
//! Keywords are case-insensitive. Constant node and predicate labels are
//! resolved against the graph's [`Dictionary`]; unknown labels are errors so
//! that typos surface early rather than silently producing empty results.

use wireframe_graph::Dictionary;

use crate::cq::{ConjunctiveQuery, CqBuilder};
use crate::error::QueryError;

/// Parses a SPARQL conjunctive query against `dictionary`.
pub fn parse_query(input: &str, dictionary: &Dictionary) -> Result<ConjunctiveQuery, QueryError> {
    let tokens = tokenize(input);
    let mut cur = Cursor {
        tokens: &tokens,
        pos: 0,
    };

    expect_keyword(cur.next(), "SELECT")?;

    let mut builder = CqBuilder::new(dictionary);
    let mut projection: Vec<String> = Vec::new();
    let mut project_all = false;
    let mut distinct = false;

    // Projection list up to WHERE.
    loop {
        let tok = cur
            .next()
            .ok_or_else(|| QueryError::Parse("unexpected end after SELECT".into()))?;
        if tok.eq_ignore_ascii_case("DISTINCT") {
            distinct = true;
        } else if tok.eq_ignore_ascii_case("WHERE") {
            break;
        } else if tok == "*" {
            project_all = true;
        } else if let Some(name) = tok.strip_prefix('?') {
            if name.is_empty() {
                return Err(QueryError::Parse("empty variable name in SELECT".into()));
            }
            projection.push(name.to_owned());
        } else {
            return Err(QueryError::Parse(format!(
                "expected variable, '*', DISTINCT or WHERE, found {tok:?}"
            )));
        }
    }
    if projection.is_empty() && !project_all {
        return Err(QueryError::Parse("SELECT list is empty".into()));
    }

    match cur.next() {
        Some("{") => {}
        other => {
            return Err(QueryError::Parse(format!(
                "expected '{{' after WHERE, found {other:?}"
            )))
        }
    }

    if distinct {
        builder.distinct();
    }
    if !project_all {
        for name in &projection {
            builder.project(name);
        }
    }

    // Triple patterns until '}'.
    let mut saw_pattern = false;
    loop {
        let tok = match cur.next() {
            Some(t) => t,
            None => return Err(QueryError::Parse("unterminated WHERE block".into())),
        };
        if tok == "}" {
            break;
        }
        if tok == "." {
            continue; // stray separator
        }
        let subject = tok.to_owned();
        let predicate = cur
            .next()
            .ok_or_else(|| {
                QueryError::Parse(format!("pattern starting at {subject:?} is truncated"))
            })?
            .to_owned();
        if predicate == "." || predicate == "}" {
            return Err(QueryError::Parse(format!(
                "pattern starting at {subject:?} is truncated"
            )));
        }
        let object = cur
            .next()
            .ok_or_else(|| {
                QueryError::Parse(format!("pattern starting at {subject:?} is truncated"))
            })?
            .to_owned();
        if object == "." || object == "}" {
            return Err(QueryError::Parse(format!(
                "pattern starting at {subject:?} is truncated"
            )));
        }
        builder.pattern(
            &strip_iri(&subject),
            &strip_iri(&predicate),
            &strip_iri(&object),
        )?;
        saw_pattern = true;
        // Optional '.' separator before the next pattern or '}'.
        if cur.peek() == Some(".") {
            cur.next();
        }
    }
    if !saw_pattern {
        return Err(QueryError::EmptyQuery);
    }
    if let Some(extra) = cur.peek() {
        return Err(QueryError::Parse(format!(
            "unexpected trailing token {extra:?} after '}}'"
        )));
    }

    builder.build()
}

/// A simple token cursor.
struct Cursor<'a> {
    tokens: &'a [String],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn next(&mut self) -> Option<&'a str> {
        let t = self.tokens.get(self.pos).map(String::as_str);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn peek(&self) -> Option<&'a str> {
        self.tokens.get(self.pos).map(String::as_str)
    }
}

fn expect_keyword(tok: Option<&str>, kw: &str) -> Result<(), QueryError> {
    match tok {
        Some(t) if t.eq_ignore_ascii_case(kw) => Ok(()),
        other => Err(QueryError::Parse(format!("expected {kw}, found {other:?}"))),
    }
}

fn strip_iri(tok: &str) -> String {
    let t = tok
        .strip_prefix('<')
        .and_then(|t| t.strip_suffix('>'))
        .unwrap_or(tok);
    t.to_owned()
}

/// Splits the input into tokens, treating `{`, `}` and standalone `.` as their
/// own tokens. A trailing `.` attached to a term (`?z.`) is split off; dots
/// inside labels (dates, decimals) are preserved.
fn tokenize(input: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    for raw in input.split_whitespace() {
        let mut rest = raw;
        loop {
            if rest.is_empty() {
                break;
            }
            if let Some(stripped) = rest.strip_prefix('{') {
                tokens.push("{".to_owned());
                rest = stripped;
                continue;
            }
            if let Some(stripped) = rest.strip_prefix('}') {
                tokens.push("}".to_owned());
                rest = stripped;
                continue;
            }
            // Find the earliest brace so "x}" splits correctly.
            let brace = rest.find(['{', '}']);
            let (head, tail) = match brace {
                Some(i) => rest.split_at(i),
                None => (rest, ""),
            };
            let mut head_owned = head.to_owned();
            // Split a trailing '.' that terminates the term (`?z.`), keeping
            // interior dots (dates, decimals) intact.
            if head_owned.len() > 1 && head_owned.ends_with('.') {
                head_owned.pop();
                if !head_owned.is_empty() {
                    tokens.push(head_owned);
                }
                tokens.push(".".to_owned());
            } else if !head_owned.is_empty() {
                tokens.push(head_owned);
            }
            rest = tail;
        }
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Var;
    use wireframe_graph::GraphBuilder;

    fn dict() -> Dictionary {
        let mut b = GraphBuilder::new();
        b.add("alice", "knows", "bob");
        b.add("bob", "worksAt", "acme");
        b.add("acme", "locatedIn", "toronto");
        b.build().dictionary().clone()
    }

    #[test]
    fn parse_chain() {
        let d = dict();
        let q = parse_query(
            "SELECT ?x ?y ?z WHERE { ?x :knows ?y . ?y :worksAt ?z . }",
            &d,
        )
        .unwrap();
        assert_eq!(q.num_patterns(), 2);
        assert_eq!(q.projection().len(), 3);
        assert!(!q.distinct());
    }

    #[test]
    fn parse_distinct_and_star() {
        let d = dict();
        let q = parse_query("select distinct * where { ?x knows ?y }", &d).unwrap();
        assert!(q.distinct());
        assert_eq!(q.projection().len(), 2);
    }

    #[test]
    fn parse_without_trailing_dot() {
        let d = dict();
        let q = parse_query("SELECT ?x WHERE { ?x knows ?y . ?y worksAt ?z }", &d).unwrap();
        assert_eq!(q.num_patterns(), 2);
    }

    #[test]
    fn parse_dot_glued_to_term() {
        let d = dict();
        let q = parse_query("SELECT ?x WHERE { ?x knows ?y. ?y worksAt ?z. }", &d).unwrap();
        assert_eq!(q.num_patterns(), 2);
        assert_eq!(q.num_vars(), 3);
    }

    #[test]
    fn parse_constant_object() {
        let d = dict();
        let q = parse_query("SELECT ?x WHERE { ?x worksAt acme . }", &d).unwrap();
        assert!(q.patterns()[0].object.as_const().is_some());
    }

    #[test]
    fn parse_iri_brackets() {
        let d = dict();
        let q = parse_query("SELECT ?x WHERE { ?x <knows> <bob> . }", &d).unwrap();
        assert!(q.patterns()[0].object.as_const().is_some());
    }

    #[test]
    fn projection_order_is_select_order() {
        let d = dict();
        let q = parse_query("SELECT ?y ?x WHERE { ?x knows ?y . }", &d).unwrap();
        assert_eq!(q.var_name(q.projection()[0]), "y");
        assert_eq!(q.var_name(q.projection()[1]), "x");
        // Variables are numbered by first mention, which is the SELECT list here.
        assert_eq!(q.projection(), &[Var(0), Var(1)]);
    }

    #[test]
    fn errors_missing_select() {
        let d = dict();
        assert!(matches!(
            parse_query("ASK { ?x knows ?y }", &d),
            Err(QueryError::Parse(_))
        ));
    }

    #[test]
    fn errors_empty_select_list() {
        let d = dict();
        assert!(parse_query("SELECT WHERE { ?x knows ?y }", &d).is_err());
    }

    #[test]
    fn errors_unknown_predicate() {
        let d = dict();
        assert!(matches!(
            parse_query("SELECT ?x WHERE { ?x flies ?y }", &d),
            Err(QueryError::UnknownPredicate(_))
        ));
    }

    #[test]
    fn errors_truncated_pattern() {
        let d = dict();
        assert!(parse_query("SELECT ?x WHERE { ?x knows . }", &d).is_err());
        assert!(parse_query("SELECT ?x WHERE { ?x knows }", &d).is_err());
    }

    #[test]
    fn errors_unterminated_block() {
        let d = dict();
        assert!(parse_query("SELECT ?x WHERE { ?x knows ?y .", &d).is_err());
    }

    #[test]
    fn errors_empty_body() {
        let d = dict();
        assert!(matches!(
            parse_query("SELECT ?x WHERE { }", &d),
            Err(QueryError::EmptyQuery)
        ));
    }

    #[test]
    fn errors_trailing_garbage() {
        let d = dict();
        assert!(parse_query("SELECT ?x WHERE { ?x knows ?y } LIMIT 5", &d).is_err());
    }

    #[test]
    fn tokenizer_splits_braces_and_dots() {
        let toks = tokenize("SELECT ?x WHERE {?x knows ?y.}");
        assert_eq!(
            toks,
            vec!["SELECT", "?x", "WHERE", "{", "?x", "knows", "?y", ".", "}"]
        );
    }

    #[test]
    fn tokenizer_keeps_interior_dots() {
        let toks = tokenize("?d wasBornOnDate 1994-05-12.5 .");
        assert_eq!(toks, vec!["?d", "wasBornOnDate", "1994-05-12.5", "."]);
    }
}

//! String dictionaries mapping node and predicate labels to dense identifiers.
//!
//! RDF data is string-heavy; every serious RDF store dictionary-encodes the
//! strings once at load time and evaluates queries entirely over the integer
//! identifiers. The paper's prototype does the same on top of PostgreSQL
//! ("indexes on the string dictionary"). [`Dictionary`] holds both directions
//! of the mapping for nodes and predicates separately.

use std::collections::HashMap;

use crate::ids::{NodeId, PredId};

/// Bidirectional mapping between strings and dense identifiers for one
/// namespace (nodes or predicates).
#[derive(Debug, Default, Clone)]
struct Interner {
    to_id: HashMap<String, u32>,
    to_str: Vec<String>,
}

impl Interner {
    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.to_id.get(s) {
            return id;
        }
        let id = self.to_str.len() as u32;
        self.to_id.insert(s.to_owned(), id);
        self.to_str.push(s.to_owned());
        id
    }

    fn lookup(&self, s: &str) -> Option<u32> {
        self.to_id.get(s).copied()
    }

    fn resolve(&self, id: u32) -> Option<&str> {
        self.to_str.get(id as usize).map(String::as_str)
    }

    fn len(&self) -> usize {
        self.to_str.len()
    }
}

/// Dictionary for a graph: interns node labels and predicate labels into
/// [`NodeId`]s and [`PredId`]s respectively.
///
/// The two namespaces are independent; a string may appear both as a node and
/// as a predicate label with unrelated identifiers.
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    nodes: Interner,
    predicates: Interner,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a node label, returning its identifier (allocating a fresh one
    /// if the label has not been seen before).
    pub fn intern_node(&mut self, label: &str) -> NodeId {
        NodeId(self.nodes.intern(label))
    }

    /// Interns a predicate label, returning its identifier.
    pub fn intern_predicate(&mut self, label: &str) -> PredId {
        PredId(self.predicates.intern(label))
    }

    /// Looks up an existing node label without interning it.
    pub fn node_id(&self, label: &str) -> Option<NodeId> {
        self.nodes.lookup(label).map(NodeId)
    }

    /// Looks up an existing predicate label without interning it.
    pub fn predicate_id(&self, label: &str) -> Option<PredId> {
        self.predicates.lookup(label).map(PredId)
    }

    /// Returns the label of a node identifier, if it exists.
    pub fn node_label(&self, id: NodeId) -> Option<&str> {
        self.nodes.resolve(id.0)
    }

    /// Returns the label of a predicate identifier, if it exists.
    pub fn predicate_label(&self, id: PredId) -> Option<&str> {
        self.predicates.resolve(id.0)
    }

    /// Number of distinct node labels interned so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of distinct predicate labels interned so far.
    pub fn predicate_count(&self) -> usize {
        self.predicates.len()
    }

    /// Iterates over all predicate identifiers with their labels.
    pub fn predicates(&self) -> impl Iterator<Item = (PredId, &str)> + '_ {
        self.predicates
            .to_str
            .iter()
            .enumerate()
            .map(|(i, s)| (PredId(i as u32), s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern_node("alice");
        let b = d.intern_node("bob");
        let a2 = d.intern_node("alice");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.node_count(), 2);
    }

    #[test]
    fn namespaces_are_independent() {
        let mut d = Dictionary::new();
        let n = d.intern_node("knows");
        let p = d.intern_predicate("knows");
        assert_eq!(n.0, 0);
        assert_eq!(p.0, 0);
        assert_eq!(d.node_label(n), Some("knows"));
        assert_eq!(d.predicate_label(p), Some("knows"));
    }

    #[test]
    fn lookup_without_interning() {
        let mut d = Dictionary::new();
        d.intern_predicate("actedIn");
        assert_eq!(d.predicate_id("actedIn"), Some(PredId(0)));
        assert_eq!(d.predicate_id("missing"), None);
        assert_eq!(d.node_id("missing"), None);
    }

    #[test]
    fn resolve_unknown_id_is_none() {
        let d = Dictionary::new();
        assert_eq!(d.node_label(NodeId(0)), None);
        assert_eq!(d.predicate_label(PredId(3)), None);
    }

    #[test]
    fn predicates_iterator_lists_all() {
        let mut d = Dictionary::new();
        d.intern_predicate("a");
        d.intern_predicate("b");
        let all: Vec<_> = d.predicates().map(|(_, s)| s.to_owned()).collect();
        assert_eq!(all, vec!["a", "b"]);
    }

    #[test]
    fn ids_are_dense() {
        let mut d = Dictionary::new();
        for i in 0..100 {
            let id = d.intern_node(&format!("node{i}"));
            assert_eq!(id.index(), i);
        }
    }
}

//! The delta storage backend: a mutable overlay over an immutable CSR base.
//!
//! The differential-dataflow family of systems layers updates as sorted
//! delta collections over immutable arranged batches, merging on read and
//! compacting periodically. [`DeltaStore`] brings that shape to the
//! [`GraphStore`](crate::store::GraphStore) contract:
//!
//! * the **base** is an immutable [`CsrStore`] behind an `Arc`, shared (not
//!   copied) across every version produced by a mutation;
//! * per predicate, a sorted **insert side-table** (`adds`) and a sorted
//!   **tombstone table** (`dels`) record the live difference from the base —
//!   both bounded by the compaction threshold, so cloning a version costs
//!   `O(delta)`, never `O(base)`;
//! * full scans ([`pairs`](GraphStore::pairs)) are **merge-on-read**: a
//!   linear three-way merge of the sorted base pair array with the sorted
//!   side-tables (the same merge discipline as [`crate::slices`]);
//! * per-node neighbor slices stay zero-copy: a mutation merges the touched
//!   nodes' base adjacency with the side-tables **once, at write time**, and
//!   stores the merged sorted list as an override — reads then return either
//!   the override slice or the base slice, so
//!   [`neighbors_sorted`](GraphStore::neighbors_sorted) remains `true` and
//!   the evaluators keep their galloping fast paths.
//!
//! Statistics (`distinct_*`, `max_*_degree`) are recomputed exactly for the
//! predicates a mutation touches (an `O(|predicate|)` scan of the merged
//! pairs), so a delta graph's catalog — and therefore its query plans and
//! answer-graph sizes — is identical to a fresh CSR build of the same triple
//! set, which the store-equivalence churn tests assert.
//!
//! When the overlay grows past the configured fraction of the base
//! ([`Graph::apply`](crate::store::Graph::apply) checks after every batch),
//! the store **compacts**: merges everything into a fresh CSR base and
//! starts over with empty side-tables.

use std::borrow::Cow;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use crate::csr::CsrStore;
use crate::ids::{NodeId, PredId, Triple};
use crate::store::{GraphStore, StoreKind};

/// Exact per-predicate statistics of the merged (base + delta) view.
#[derive(Debug, Clone, Copy, Default)]
struct PredStats {
    cardinality: usize,
    distinct_subjects: usize,
    distinct_objects: usize,
    max_out_degree: usize,
    max_in_degree: usize,
}

fn compute_stats(pairs: &[(NodeId, NodeId)]) -> PredStats {
    let mut stats = PredStats {
        cardinality: pairs.len(),
        ..PredStats::default()
    };
    let mut run = 0usize;
    let mut prev: Option<NodeId> = None;
    for &(s, _) in pairs {
        if prev == Some(s) {
            run += 1;
        } else {
            stats.distinct_subjects += 1;
            run = 1;
            prev = Some(s);
        }
        stats.max_out_degree = stats.max_out_degree.max(run);
    }
    let mut objects: Vec<NodeId> = pairs.iter().map(|&(_, o)| o).collect();
    objects.sort_unstable();
    run = 0;
    prev = None;
    for o in objects {
        if prev == Some(o) {
            run += 1;
        } else {
            stats.distinct_objects += 1;
            run = 1;
            prev = Some(o);
        }
        stats.max_in_degree = stats.max_in_degree.max(run);
    }
    stats
}

/// Linear three-way merge: `base ∪ adds`, minus tombstones. All three
/// inputs are ascending-sorted and mutually consistent (`adds` disjoint from
/// `base`, `dels` ⊆ `base`). Serves both the pair-scan merge (elements are
/// `(subject, object)` pairs) and the per-node neighbor merge (elements are
/// node identifiers).
fn merge_sorted<T: Copy + Ord>(base: &[T], adds: &[T], dels: &[T]) -> Vec<T> {
    let mut out = Vec::with_capacity(base.len() + adds.len() - dels.len());
    let mut a = adds.iter().peekable();
    let mut d = dels.iter().peekable();
    for &item in base {
        while let Some(&&add) = a.peek() {
            if add < item {
                out.push(add);
                a.next();
            } else {
                break;
            }
        }
        if d.peek() == Some(&&item) {
            d.next();
            continue;
        }
        out.push(item);
    }
    out.extend(a.copied());
    out
}

/// One predicate's overlay: sorted side-tables plus merged per-node
/// adjacency overrides for every node the overlay touches.
#[derive(Debug, Clone, Default)]
struct PredDelta {
    /// Inserted pairs absent from the base, sorted by `(subject, object)`.
    adds: Vec<(NodeId, NodeId)>,
    /// Tombstoned base pairs, sorted by `(subject, object)`.
    dels: Vec<(NodeId, NodeId)>,
    /// Merged sorted object lists for subjects touched by the overlay.
    fwd: HashMap<NodeId, Vec<NodeId>>,
    /// Merged sorted subject lists for objects touched by the overlay.
    bwd: HashMap<NodeId, Vec<NodeId>>,
    /// Exact merged-view statistics; `None` while the overlay is empty (the
    /// base's own statistics are exact then).
    stats: Option<PredStats>,
}

impl PredDelta {
    fn is_empty(&self) -> bool {
        self.adds.is_empty() && self.dels.is_empty()
    }

    fn delta_len(&self) -> usize {
        self.adds.len() + self.dels.len()
    }

    fn heap_bytes(&self) -> usize {
        let pair = std::mem::size_of::<(NodeId, NodeId)>();
        let node = std::mem::size_of::<NodeId>();
        self.adds.capacity() * pair
            + self.dels.capacity() * pair
            + self
                .fwd
                .values()
                .chain(self.bwd.values())
                .map(|v| v.capacity() * node + std::mem::size_of::<(NodeId, Vec<NodeId>)>())
                .sum::<usize>()
    }
}

/// The delta storage backend (`StoreKind::Delta`): an immutable shared
/// [`CsrStore`] base plus bounded per-predicate insert/tombstone overlays.
/// See the module-level documentation for the layout and cost model.
#[derive(Debug, Clone)]
pub struct DeltaStore {
    base: Arc<CsrStore>,
    preds: Vec<PredDelta>,
    num_triples: usize,
    delta_edges: usize,
}

impl DeltaStore {
    /// Wraps a freshly built CSR base with an empty overlay.
    pub fn fresh(base: CsrStore) -> Self {
        let preds = (0..base.num_predicates())
            .map(|_| PredDelta::default())
            .collect();
        let num_triples = base.triple_count();
        DeltaStore {
            base: Arc::new(base),
            preds,
            num_triples,
            delta_edges: 0,
        }
    }

    /// Builds a delta store from raw per-predicate edge lists (a CSR base
    /// with an empty overlay) — the [`StoreKind::Delta`] build path.
    pub fn build(num_nodes: usize, edges_by_predicate: Vec<Vec<(NodeId, NodeId)>>) -> Self {
        DeltaStore::fresh(CsrStore::build(num_nodes, edges_by_predicate))
    }

    /// Overlay size: pending inserts plus tombstones, across all predicates.
    pub fn delta_len(&self) -> usize {
        self.delta_edges
    }

    /// Overlay size as a fraction of the base triple count — the quantity
    /// [`Graph::apply`](crate::store::Graph::apply) compares against the
    /// compaction threshold.
    pub fn delta_fraction(&self) -> f64 {
        self.delta_edges as f64 / self.base.triple_count().max(1) as f64
    }

    /// Number of triples in the immutable base (excludes the overlay).
    pub fn base_triples(&self) -> usize {
        self.base.triple_count()
    }

    #[inline]
    fn pred(&self, p: PredId) -> &PredDelta {
        &self.preds[p.index()]
    }

    /// Base accessors guarded for predicates interned after the base was
    /// built (the base store has no entry for them).
    #[inline]
    fn base_objects(&self, p: PredId, s: NodeId) -> &[NodeId] {
        if p.index() < self.base.num_predicates() {
            self.base.objects_of(p, s)
        } else {
            &[]
        }
    }

    #[inline]
    fn base_subjects(&self, p: PredId, o: NodeId) -> &[NodeId] {
        if p.index() < self.base.num_predicates() {
            self.base.subjects_of(p, o)
        } else {
            &[]
        }
    }

    #[inline]
    fn base_pairs(&self, p: PredId) -> &[(NodeId, NodeId)] {
        if p.index() < self.base.num_predicates() {
            match self.base.pairs(p) {
                Cow::Borrowed(pairs) => pairs,
                Cow::Owned(_) => unreachable!("CsrStore::pairs always borrows"),
            }
        } else {
            &[]
        }
    }

    /// The merged pair list of one predicate (always owned; use
    /// [`GraphStore::pairs`] for the zero-copy fast path).
    fn merged_pairs(&self, p: PredId) -> Vec<(NodeId, NodeId)> {
        let pred = self.pred(p);
        merge_sorted(self.base_pairs(p), &pred.adds, &pred.dels)
    }

    /// Applies an already-resolved net mutation: `inserts` are currently
    /// absent, `removes` currently present (the caller —
    /// [`Graph::apply`](crate::store::Graph::apply) — resolves ordered ops
    /// and set semantics). `num_predicates` is the post-mutation predicate
    /// vocabulary size. Returns the new version; `self` is untouched (older
    /// versions keep serving).
    pub fn with_mutation(
        &self,
        num_predicates: usize,
        inserts: &[Triple],
        removes: &[Triple],
    ) -> DeltaStore {
        let mut preds = self.preds.clone();
        if preds.len() < num_predicates {
            preds.resize(num_predicates, PredDelta::default());
        }

        // Group the batch by predicate: (insert pairs, remove pairs).
        type PredBatch = (Vec<(NodeId, NodeId)>, Vec<(NodeId, NodeId)>);
        let mut touched: HashMap<PredId, PredBatch> = HashMap::new();
        for t in inserts {
            touched
                .entry(t.predicate)
                .or_default()
                .0
                .push((t.subject, t.object));
        }
        for t in removes {
            touched
                .entry(t.predicate)
                .or_default()
                .1
                .push((t.subject, t.object));
        }

        for (&p, (ins, outs)) in &touched {
            let pred = &mut preds[p.index()];
            // Re-express the batch relative to the immutable base: an insert
            // of a tombstoned base pair revives it; a removal of a pending
            // add cancels it.
            let mut adds: BTreeSet<(NodeId, NodeId)> = pred.adds.iter().copied().collect();
            let mut dels: BTreeSet<(NodeId, NodeId)> = pred.dels.iter().copied().collect();
            for &(s, o) in ins {
                if !dels.remove(&(s, o)) {
                    adds.insert((s, o));
                }
            }
            for &(s, o) in outs {
                if !adds.remove(&(s, o)) {
                    dels.insert((s, o));
                }
            }
            pred.adds = adds.into_iter().collect();
            pred.dels = dels.into_iter().collect();

            // Rebuild the merged adjacency overrides for the touched nodes
            // (merge-on-write: reads stay plain sorted slices).
            let subjects: BTreeSet<NodeId> =
                ins.iter().chain(outs.iter()).map(|&(s, _)| s).collect();
            let objects: BTreeSet<NodeId> =
                ins.iter().chain(outs.iter()).map(|&(_, o)| o).collect();
            for s in subjects {
                let lo = pred.adds.partition_point(|&(x, _)| x < s);
                let hi = pred.adds.partition_point(|&(x, _)| x <= s);
                let add_objs: Vec<NodeId> = pred.adds[lo..hi].iter().map(|&(_, o)| o).collect();
                let lo = pred.dels.partition_point(|&(x, _)| x < s);
                let hi = pred.dels.partition_point(|&(x, _)| x <= s);
                let del_objs: Vec<NodeId> = pred.dels[lo..hi].iter().map(|&(_, o)| o).collect();
                if add_objs.is_empty() && del_objs.is_empty() {
                    pred.fwd.remove(&s);
                    continue;
                }
                let base = if p.index() < self.base.num_predicates() {
                    self.base.objects_of(p, s)
                } else {
                    &[]
                };
                pred.fwd.insert(s, merge_sorted(base, &add_objs, &del_objs));
            }
            for o in objects {
                let mut add_subs: Vec<NodeId> = pred
                    .adds
                    .iter()
                    .filter(|&&(_, x)| x == o)
                    .map(|&(s, _)| s)
                    .collect();
                add_subs.sort_unstable();
                let mut del_subs: Vec<NodeId> = pred
                    .dels
                    .iter()
                    .filter(|&&(_, x)| x == o)
                    .map(|&(s, _)| s)
                    .collect();
                del_subs.sort_unstable();
                if add_subs.is_empty() && del_subs.is_empty() {
                    pred.bwd.remove(&o);
                    continue;
                }
                let base = if p.index() < self.base.num_predicates() {
                    self.base.subjects_of(p, o)
                } else {
                    &[]
                };
                pred.bwd.insert(o, merge_sorted(base, &add_subs, &del_subs));
            }
        }

        let mut store = DeltaStore {
            base: Arc::clone(&self.base),
            preds,
            num_triples: 0,
            delta_edges: 0,
        };
        // Exact statistics for the touched predicates (O(|predicate|) each);
        // untouched predicates keep their previous exact stats.
        for &p in touched.keys() {
            let stats = if store.preds[p.index()].is_empty() {
                None // the batch cancelled out: the base is exact again
            } else {
                Some(compute_stats(&store.merged_pairs(p)))
            };
            store.preds[p.index()].stats = stats;
        }
        store.num_triples = (0..store.preds.len())
            .map(|p| store.cardinality(PredId(p as u32)))
            .sum();
        store.delta_edges = store.preds.iter().map(PredDelta::delta_len).sum();
        store
    }

    /// Merges the overlay into a fresh CSR base and starts over with empty
    /// side-tables. `num_nodes` is the current dense node-space size.
    pub fn compact(&self, num_nodes: usize) -> DeltaStore {
        let edges: Vec<Vec<(NodeId, NodeId)>> = (0..self.preds.len())
            .map(|p| self.merged_pairs(PredId(p as u32)))
            .collect();
        DeltaStore::fresh(CsrStore::build(num_nodes, edges))
    }
}

impl GraphStore for DeltaStore {
    fn kind(&self) -> StoreKind {
        StoreKind::Delta
    }

    fn num_predicates(&self) -> usize {
        self.preds.len()
    }

    fn triple_count(&self) -> usize {
        self.num_triples
    }

    #[inline]
    fn cardinality(&self, p: PredId) -> usize {
        let pred = self.pred(p);
        match pred.stats {
            Some(stats) => stats.cardinality,
            None => self.base_pairs(p).len(),
        }
    }

    fn pairs(&self, p: PredId) -> Cow<'_, [(NodeId, NodeId)]> {
        if self.pred(p).is_empty() {
            Cow::Borrowed(self.base_pairs(p))
        } else {
            Cow::Owned(self.merged_pairs(p))
        }
    }

    fn neighbors_sorted(&self) -> bool {
        true
    }

    #[inline]
    fn objects_of(&self, p: PredId, s: NodeId) -> &[NodeId] {
        let pred = self.pred(p);
        if pred.is_empty() {
            return self.base_objects(p, s);
        }
        match pred.fwd.get(&s) {
            Some(merged) => merged,
            None => self.base_objects(p, s),
        }
    }

    #[inline]
    fn subjects_of(&self, p: PredId, o: NodeId) -> &[NodeId] {
        let pred = self.pred(p);
        if pred.is_empty() {
            return self.base_subjects(p, o);
        }
        match pred.bwd.get(&o) {
            Some(merged) => merged,
            None => self.base_subjects(p, o),
        }
    }

    #[inline]
    fn has_triple(&self, s: NodeId, p: PredId, o: NodeId) -> bool {
        let pred = self.pred(p);
        if pred.is_empty() {
            return p.index() < self.base.num_predicates() && self.base.has_triple(s, p, o);
        }
        if pred.dels.binary_search(&(s, o)).is_ok() {
            return false;
        }
        pred.adds.binary_search(&(s, o)).is_ok()
            || (p.index() < self.base.num_predicates() && self.base.has_triple(s, p, o))
    }

    fn distinct_subjects(&self, p: PredId) -> usize {
        match self.pred(p).stats {
            Some(stats) => stats.distinct_subjects,
            None if p.index() < self.base.num_predicates() => self.base.distinct_subjects(p),
            None => 0,
        }
    }

    fn distinct_objects(&self, p: PredId) -> usize {
        match self.pred(p).stats {
            Some(stats) => stats.distinct_objects,
            None if p.index() < self.base.num_predicates() => self.base.distinct_objects(p),
            None => 0,
        }
    }

    fn max_out_degree(&self, p: PredId) -> usize {
        match self.pred(p).stats {
            Some(stats) => stats.max_out_degree,
            None if p.index() < self.base.num_predicates() => self.base.max_out_degree(p),
            None => 0,
        }
    }

    fn max_in_degree(&self, p: PredId) -> usize {
        match self.pred(p).stats {
            Some(stats) => stats.max_in_degree,
            None if p.index() < self.base.num_predicates() => self.base.max_in_degree(p),
            None => 0,
        }
    }

    fn heap_bytes(&self) -> usize {
        // The Arc-shared base is counted once per store view; overlay
        // structures are this version's own.
        self.base.heap_bytes() + self.preds.iter().map(PredDelta::heap_bytes).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn t(s: u32, p: u32, o: u32) -> Triple {
        Triple::new(NodeId(s), PredId(p), NodeId(o))
    }

    /// Predicate 0: 0->1, 0->2, 1->2, 3->2; predicate 1: empty.
    fn sample() -> DeltaStore {
        DeltaStore::build(
            5,
            vec![
                vec![(n(0), n(1)), (n(0), n(2)), (n(1), n(2)), (n(3), n(2))],
                vec![],
            ],
        )
    }

    #[test]
    fn fresh_store_delegates_to_the_base() {
        let s = sample();
        assert_eq!(s.kind(), StoreKind::Delta);
        assert_eq!(s.triple_count(), 4);
        assert_eq!(s.delta_len(), 0);
        assert_eq!(s.delta_fraction(), 0.0);
        assert!(s.neighbors_sorted());
        assert_eq!(s.objects_of(PredId(0), n(0)), &[n(1), n(2)]);
        assert_eq!(s.subjects_of(PredId(0), n(2)), &[n(0), n(1), n(3)]);
        assert!(s.has_triple(n(0), PredId(0), n(1)));
        assert!(matches!(s.pairs(PredId(0)), Cow::Borrowed(_)));
    }

    #[test]
    fn inserts_and_tombstones_merge_on_read() {
        let s = sample();
        let v2 = s.with_mutation(2, &[t(2, 0, 4), t(0, 1, 1)], &[t(0, 0, 2)]);
        // The old version is untouched.
        assert_eq!(s.triple_count(), 4);
        assert!(s.has_triple(n(0), PredId(0), n(2)));

        assert_eq!(v2.triple_count(), 5);
        assert_eq!(v2.delta_len(), 3);
        assert!(!v2.has_triple(n(0), PredId(0), n(2)), "tombstoned");
        assert!(v2.has_triple(n(2), PredId(0), n(4)), "inserted");
        assert!(v2.has_triple(n(0), PredId(1), n(1)), "fresh predicate edge");
        assert_eq!(v2.objects_of(PredId(0), n(0)), &[n(1)], "merged override");
        assert_eq!(v2.objects_of(PredId(0), n(2)), &[n(4)]);
        assert_eq!(v2.objects_of(PredId(0), n(1)), &[n(2)], "untouched: base");
        assert_eq!(v2.subjects_of(PredId(0), n(2)), &[n(1), n(3)]);
        assert_eq!(v2.subjects_of(PredId(0), n(4)), &[n(2)]);
        assert_eq!(
            v2.pairs(PredId(0)).as_ref(),
            &[(n(0), n(1)), (n(1), n(2)), (n(2), n(4)), (n(3), n(2))]
        );
        assert_eq!(v2.cardinality(PredId(1)), 1);
        assert!(v2.heap_bytes() > s.heap_bytes());
    }

    #[test]
    fn stats_match_a_fresh_csr_of_the_merged_set() {
        let s = sample();
        let v2 = s.with_mutation(2, &[t(2, 0, 4), t(4, 0, 2)], &[t(0, 0, 1)]);
        let fresh = CsrStore::build(5, vec![v2.merged_pairs(PredId(0)), vec![]]);
        let p = PredId(0);
        assert_eq!(v2.cardinality(p), fresh.cardinality(p));
        assert_eq!(v2.distinct_subjects(p), fresh.distinct_subjects(p));
        assert_eq!(v2.distinct_objects(p), fresh.distinct_objects(p));
        assert_eq!(v2.max_out_degree(p), fresh.max_out_degree(p));
        assert_eq!(v2.max_in_degree(p), fresh.max_in_degree(p));
    }

    #[test]
    fn cancelling_operations_restore_the_base_fast_path() {
        let s = sample();
        let v2 = s.with_mutation(2, &[t(2, 0, 4)], &[]);
        assert_eq!(v2.delta_len(), 1);
        let v3 = v2.with_mutation(2, &[], &[t(2, 0, 4)]);
        assert_eq!(v3.delta_len(), 0, "a removed pending add cancels out");
        assert!(matches!(v3.pairs(PredId(0)), Cow::Borrowed(_)));
        assert_eq!(v3.objects_of(PredId(0), n(2)), &[] as &[NodeId]);

        // Tombstone + revive likewise.
        let v4 = s
            .with_mutation(2, &[], &[t(0, 0, 1)])
            .with_mutation(2, &[t(0, 0, 1)], &[]);
        assert_eq!(v4.delta_len(), 0);
        assert_eq!(v4.objects_of(PredId(0), n(0)), &[n(1), n(2)]);
    }

    #[test]
    fn compaction_absorbs_the_overlay() {
        let s = sample();
        let v2 = s.with_mutation(2, &[t(2, 0, 4), t(0, 1, 1)], &[t(0, 0, 2)]);
        assert!(v2.delta_fraction() > 0.5);
        let compacted = v2.compact(5);
        assert_eq!(compacted.delta_len(), 0);
        assert_eq!(compacted.base_triples(), 5);
        assert_eq!(compacted.triple_count(), v2.triple_count());
        for p in [PredId(0), PredId(1)] {
            assert_eq!(compacted.pairs(p).as_ref(), v2.pairs(p).as_ref());
        }
        assert!(matches!(compacted.pairs(PredId(0)), Cow::Borrowed(_)));
    }

    #[test]
    fn out_of_range_nodes_and_new_nodes_are_safe() {
        let s = sample();
        // Node 7 is beyond the base's dense space: inserts against it work,
        // probes for absent nodes return empty.
        let v2 = s.with_mutation(2, &[t(7, 0, 0)], &[]);
        assert_eq!(v2.objects_of(PredId(0), n(7)), &[n(0)]);
        assert_eq!(v2.subjects_of(PredId(0), n(0)), &[n(7)]);
        assert_eq!(v2.objects_of(PredId(0), n(100)), &[] as &[NodeId]);
        assert!(!v2.has_triple(n(100), PredId(0), n(0)));
        let compacted = v2.compact(8);
        assert_eq!(compacted.objects_of(PredId(0), n(7)), &[n(0)]);
    }

    #[test]
    fn merge_helpers_handle_edge_cases() {
        assert_eq!(merge_sorted::<NodeId>(&[], &[], &[]), Vec::<NodeId>::new());
        assert_eq!(
            merge_sorted(&[n(1), n(3)], &[n(0), n(2), n(9)], &[n(3)]),
            vec![n(0), n(1), n(2), n(9)]
        );
        assert_eq!(
            merge_sorted(&[(n(1), n(1))], &[], &[(n(1), n(1))]),
            Vec::<(NodeId, NodeId)>::new()
        );
    }
}

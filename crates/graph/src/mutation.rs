//! Mutations: ordered batches of triple insertions and removals.
//!
//! A [`Mutation`] is the unit of change for dynamic graphs: an ordered list
//! of insert/remove operations over string-labeled triples, applied
//! atomically by [`Graph::apply`](crate::store::Graph::apply). Operations are
//! resolved in order within the batch (removing and then re-inserting the
//! same triple leaves it present), and the net effect follows **set
//! semantics**: inserting a triple that is already present and removing one
//! that is absent are both no-ops, mirroring the
//! [`GraphBuilder`](crate::builder::GraphBuilder) dedup contract.
//!
//! The `+`/`-` script format parsed by [`Mutation::parse_script`] is the
//! on-disk form used by `wfquery --mutations`: one operation per line, a
//! leading `+` (insert) or `-` (remove) followed by a triple in any syntax
//! accepted by [`crate::ntriples::parse_line`].

use serde::json::Value;
use serde::Serialize;

use crate::error::GraphError;
use crate::ids::{NodeId, PredId, Triple};
use crate::ntriples::parse_line;

/// One operation of a [`Mutation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationOp {
    /// Add the triple (a no-op when already present).
    Insert,
    /// Delete the triple (a no-op when absent).
    Remove,
}

/// An ordered batch of triple insertions and removals.
#[derive(Debug, Clone, Default)]
pub struct Mutation {
    ops: Vec<(MutationOp, String, String, String)>,
}

impl Mutation {
    /// An empty mutation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an insertion (builder form).
    pub fn insert(mut self, subject: &str, predicate: &str, object: &str) -> Self {
        self.push(MutationOp::Insert, subject, predicate, object);
        self
    }

    /// Appends a removal (builder form).
    pub fn remove(mut self, subject: &str, predicate: &str, object: &str) -> Self {
        self.push(MutationOp::Remove, subject, predicate, object);
        self
    }

    /// Appends an operation.
    pub fn push(&mut self, op: MutationOp, subject: &str, predicate: &str, object: &str) {
        self.ops.push((
            op,
            subject.to_owned(),
            predicate.to_owned(),
            object.to_owned(),
        ));
    }

    /// The operations, in application order.
    pub fn ops(&self) -> &[(MutationOp, String, String, String)] {
        &self.ops
    }

    /// Number of operations in the batch.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch contains no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Parses a mutation script: one operation per line, `+` or `-` followed
    /// by a triple in any [`parse_line`] syntax. Blank lines and `#` comments
    /// are skipped.
    ///
    /// ```
    /// use wireframe_graph::Mutation;
    /// let m = Mutation::parse_script("+ a knows b\n# comment\n- a knows c\n").unwrap();
    /// assert_eq!(m.len(), 2);
    /// ```
    pub fn parse_script(text: &str) -> Result<Mutation, GraphError> {
        let mut mutation = Mutation::new();
        for (number, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (op, rest) = match line.split_at(1) {
                ("+", rest) => (MutationOp::Insert, rest),
                ("-", rest) => (MutationOp::Remove, rest),
                _ => {
                    return Err(GraphError::Parse(format!(
                        "mutation line {} must start with '+' or '-': {line:?}",
                        number + 1
                    )))
                }
            };
            // Re-wrap triple-syntax errors so the script's own line number
            // survives (parse_line only knows the text after the operator).
            let parsed = match parse_line(rest) {
                Ok(parsed) => parsed,
                Err(GraphError::Parse(msg)) => {
                    return Err(GraphError::Parse(format!(
                        "mutation line {}: {msg}",
                        number + 1
                    )))
                }
                Err(other) => return Err(other),
            };
            match parsed {
                Some((s, p, o)) => mutation.push(op, &s, &p, &o),
                None => {
                    return Err(GraphError::Parse(format!(
                        "mutation line {} has no triple after the operator: {line:?}",
                        number + 1
                    )))
                }
            }
        }
        Ok(mutation)
    }
}

/// The net, per-predicate change of one applied [`Mutation`] batch — what
/// the graph's triple set looks like *after* set semantics and in-batch
/// ordering have resolved: exactly the triples that became present and
/// exactly the triples that became absent. No-op operations (inserting a
/// present triple, removing an absent one, remove-then-reinsert within the
/// batch) never appear here.
///
/// Both sides are sorted **predicate-major** (`(predicate, subject, object)`),
/// so per-predicate consumers — incremental answer-graph maintenance maps
/// each changed edge to the query patterns it can bind — read their slice
/// with one binary-searched range ([`EdgeDelta::inserted_for`] /
/// [`EdgeDelta::removed_for`]) instead of filtering the whole batch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EdgeDelta {
    /// Triples that became present, sorted `(predicate, subject, object)`.
    inserted: Vec<Triple>,
    /// Triples that became absent, sorted `(predicate, subject, object)`.
    removed: Vec<Triple>,
}

/// Sorts triples predicate-major for [`EdgeDelta`]'s range lookups.
fn sort_predicate_major(triples: &mut [Triple]) {
    triples.sort_unstable_by_key(|t| (t.predicate, t.subject, t.object));
}

/// The half-open index range of predicate `p` within a predicate-major slice.
fn predicate_range(triples: &[Triple], p: PredId) -> std::ops::Range<usize> {
    let start = triples.partition_point(|t| t.predicate < p);
    let end = triples.partition_point(|t| t.predicate <= p);
    start..end
}

impl EdgeDelta {
    /// Builds a delta from the net inserted/removed triple lists (any order;
    /// they are re-sorted predicate-major).
    pub fn new(mut inserted: Vec<Triple>, mut removed: Vec<Triple>) -> Self {
        sort_predicate_major(&mut inserted);
        sort_predicate_major(&mut removed);
        EdgeDelta { inserted, removed }
    }

    /// Every triple that became present, sorted predicate-major.
    pub fn inserted(&self) -> &[Triple] {
        &self.inserted
    }

    /// Every triple that became absent, sorted predicate-major.
    pub fn removed(&self) -> &[Triple] {
        &self.removed
    }

    /// The triples of predicate `p` that became present.
    pub fn inserted_for(&self, p: PredId) -> &[Triple] {
        &self.inserted[predicate_range(&self.inserted, p)]
    }

    /// The triples of predicate `p` that became absent.
    pub fn removed_for(&self, p: PredId) -> &[Triple] {
        &self.removed[predicate_range(&self.removed, p)]
    }

    /// Net number of changed triples (insertions plus removals).
    pub fn len(&self) -> usize {
        self.inserted.len() + self.removed.len()
    }

    /// Whether the batch changed nothing (net).
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty() && self.removed.is_empty()
    }

    /// The sorted, deduplicated predicates this delta touches — the batch's
    /// *net* predicate footprint, directly comparable with a prepared
    /// query's `footprint()` (labels resolved through the same dictionary).
    pub fn predicates(&self) -> Vec<PredId> {
        let mut preds: Vec<PredId> = self
            .inserted
            .iter()
            .chain(&self.removed)
            .map(|t| t.predicate)
            .collect();
        preds.sort_unstable();
        preds.dedup();
        preds
    }
}

/// Wire form: the dictionary-encoded id triplet `[subject, predicate, object]`.
/// Ids are only meaningful next to the dictionary of the graph that produced
/// them; consumers that need labels resolve through it (the serving layer
/// does exactly that before pushing embedding deltas).
impl Serialize for Triple {
    fn to_json(&self) -> Value {
        Value::Array(vec![
            Value::UInt(u64::from(self.subject.0)),
            Value::UInt(u64::from(self.predicate.0)),
            Value::UInt(u64::from(self.object.0)),
        ])
    }
}

/// Wire form: `{"inserted": [[s,p,o], …], "removed": [[s,p,o], …]}`, both
/// sides in the predicate-major order [`EdgeDelta`] guarantees.
impl Serialize for EdgeDelta {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("inserted".to_owned(), self.inserted.to_json()),
            ("removed".to_owned(), self.removed.to_json()),
        ])
    }
}

/// Decodes one `[s, p, o]` id triplet.
fn triple_from_json(doc: &Value) -> Result<Triple, GraphError> {
    let parts = doc
        .as_array()
        .filter(|a| a.len() == 3)
        .ok_or_else(|| GraphError::Parse("triple must be a 3-element array".into()))?;
    let id = |v: &Value| -> Result<u32, GraphError> {
        v.as_u64()
            .and_then(|n| u32::try_from(n).ok())
            .ok_or_else(|| GraphError::Parse("triple ids must be u32 integers".into()))
    };
    Ok(Triple::new(
        NodeId(id(&parts[0])?),
        PredId(id(&parts[1])?),
        NodeId(id(&parts[2])?),
    ))
}

impl EdgeDelta {
    /// Decodes the [`Serialize`] wire form produced by [`EdgeDelta::to_json`].
    pub fn from_json(doc: &Value) -> Result<EdgeDelta, GraphError> {
        let side = |key: &str| -> Result<Vec<Triple>, GraphError> {
            doc.get(key)
                .and_then(Value::as_array)
                .ok_or_else(|| GraphError::Parse(format!("edge delta is missing {key:?}")))?
                .iter()
                .map(triple_from_json)
                .collect()
        };
        Ok(EdgeDelta::new(side("inserted")?, side("removed")?))
    }
}

/// What applying a [`Mutation`] actually changed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MutationOutcome {
    /// Triples that became present (insertions of absent triples).
    pub inserted: usize,
    /// Triples that became absent (removals of present triples).
    pub removed: usize,
    /// Whether the delta store compacted its overlay into a fresh base after
    /// this batch (always `false` on the non-delta backends).
    pub compacted: bool,
    /// The exact net change, per predicate — `inserted`/`removed` above are
    /// `delta.inserted().len()` / `delta.removed().len()`. Incremental
    /// answer-graph maintenance consumes this to update retained views in
    /// `O(delta)` instead of re-evaluating.
    pub delta: EdgeDelta,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_in_order() {
        let m = Mutation::new()
            .insert("a", "p", "b")
            .remove("a", "p", "c")
            .insert("a", "p", "c");
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        assert_eq!(m.ops()[0].0, MutationOp::Insert);
        assert_eq!(m.ops()[1].0, MutationOp::Remove);
        assert_eq!(m.ops()[1].3, "c");
    }

    #[test]
    fn script_round_trip() {
        let m = Mutation::parse_script(
            "# churn script\n+ alice knows bob\n- alice knows carol\n\n+ <x> <p> \"lit\" .\n",
        )
        .unwrap();
        assert_eq!(m.len(), 3);
        assert_eq!(m.ops()[2].1, "x");
        assert_eq!(m.ops()[2].3, "lit");
    }

    #[test]
    fn script_rejects_missing_operator_and_empty_ops() {
        let err = Mutation::parse_script("alice knows bob").unwrap_err();
        assert!(err.to_string().contains("'+' or '-'"), "{err}");
        let err = Mutation::parse_script("+   ").unwrap_err();
        assert!(err.to_string().contains("no triple"), "{err}");
        let err = Mutation::parse_script("+ only two").unwrap_err();
        assert!(err.to_string().contains("3 terms"), "{err}");
    }

    #[test]
    fn script_parse_errors_carry_line_numbers() {
        let err = Mutation::parse_script("+ a knows b\n\n+ only two\n").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("mutation line 3"), "{msg}");
        assert!(msg.contains("3 terms"), "{msg}");
    }

    #[test]
    fn edge_delta_json_round_trip() {
        use crate::ids::NodeId;
        use serde::json;
        let t = |s: u32, p: u32, o: u32| Triple::new(NodeId(s), PredId(p), NodeId(o));
        let delta = EdgeDelta::new(vec![t(3, 1, 4), t(1, 0, 2)], vec![t(5, 0, 6)]);
        let text = json::to_string(&delta);
        let doc = json::from_str(&text).unwrap();
        assert_eq!(EdgeDelta::from_json(&doc).unwrap(), delta);
        assert!(EdgeDelta::from_json(&json::from_str("{}").unwrap()).is_err());
        assert!(EdgeDelta::from_json(
            &json::from_str(r#"{"inserted":[[1,2]],"removed":[]}"#).unwrap()
        )
        .is_err());
    }

    #[test]
    fn empty_script_is_an_empty_mutation() {
        let m = Mutation::parse_script("# nothing\n\n").unwrap();
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert_eq!(MutationOutcome::default().inserted, 0);
        assert!(MutationOutcome::default().delta.is_empty());
    }

    #[test]
    fn edge_delta_sorts_predicate_major_and_slices_per_predicate() {
        use crate::ids::{NodeId, PredId, Triple};
        let t = |s: u32, p: u32, o: u32| Triple::new(NodeId(s), PredId(p), NodeId(o));
        let delta = EdgeDelta::new(
            vec![t(9, 1, 0), t(0, 0, 3), t(1, 1, 1), t(5, 0, 2)],
            vec![t(7, 2, 7)],
        );
        assert_eq!(delta.len(), 5);
        assert!(!delta.is_empty());
        assert_eq!(
            delta.inserted(),
            &[t(0, 0, 3), t(5, 0, 2), t(1, 1, 1), t(9, 1, 0)]
        );
        assert_eq!(delta.inserted_for(PredId(0)), &[t(0, 0, 3), t(5, 0, 2)]);
        assert_eq!(delta.inserted_for(PredId(1)), &[t(1, 1, 1), t(9, 1, 0)]);
        assert_eq!(delta.inserted_for(PredId(2)), &[] as &[Triple]);
        assert_eq!(delta.removed_for(PredId(2)), &[t(7, 2, 7)]);
        assert_eq!(delta.predicates(), vec![PredId(0), PredId(1), PredId(2)]);
        assert_eq!(EdgeDelta::default().predicates(), Vec::<PredId>::new());
    }
}

//! A small loader/writer for a line-oriented triple format.
//!
//! Two syntaxes are accepted, chosen per line:
//!
//! * A pragmatic subset of N-Triples: `<subject> <predicate> <object> .`
//!   (IRIs in angle brackets; plain literals in double quotes for objects).
//! * Whitespace/tab separated bare labels: `subject predicate object`.
//!
//! Comment lines starting with `#` and blank lines are skipped. This is the
//! on-disk interchange format used by the examples and the data generator; it
//! stands in for the preprocessed YAGO2s dump the paper imports into each
//! system.

use std::io::{BufRead, Write};

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::store::Graph;

/// Parses one line into `(subject, predicate, object)` labels.
/// Returns `Ok(None)` for blank and comment lines.
pub fn parse_line(line: &str) -> Result<Option<(String, String, String)>, GraphError> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let body = line.strip_suffix('.').map(str::trim_end).unwrap_or(line);
    let mut terms = Vec::with_capacity(3);
    let mut rest = body.trim_start();
    while !rest.is_empty() {
        let (term, remainder) = parse_term(rest, terms.len(), line)?;
        terms.push(term);
        rest = remainder.trim_start();
        if terms.len() == 3 && !rest.is_empty() {
            return Err(GraphError::Parse(format!(
                "trailing content {rest:?} after three terms in line {line:?}"
            )));
        }
    }
    match terms.len() {
        3 => {
            let mut it = terms.into_iter();
            Ok(Some((
                it.next().unwrap(),
                it.next().unwrap(),
                it.next().unwrap(),
            )))
        }
        n => Err(GraphError::Parse(format!(
            "expected 3 terms, found {n} in line {line:?}"
        ))),
    }
}

fn parse_term<'a>(
    input: &'a str,
    position: usize,
    line: &str,
) -> Result<(String, &'a str), GraphError> {
    let bytes = input.as_bytes();
    match bytes[0] {
        b'<' => match input.find('>') {
            Some(end) => Ok((input[1..end].to_owned(), &input[end + 1..])),
            None => Err(GraphError::Parse(format!(
                "unterminated IRI in line {line:?}"
            ))),
        },
        b'"' => {
            if position != 2 {
                return Err(GraphError::Parse(format!(
                    "literal allowed only in object position, line {line:?}"
                )));
            }
            match input[1..].find('"') {
                Some(end) => {
                    let value = input[1..1 + end].to_owned();
                    let mut rest = &input[end + 2..];
                    // Skip datatype / language tags.
                    if let Some(ws) = rest.find(char::is_whitespace) {
                        rest = &rest[ws..];
                    } else {
                        rest = "";
                    }
                    Ok((value, rest))
                }
                None => Err(GraphError::Parse(format!(
                    "unterminated literal in line {line:?}"
                ))),
            }
        }
        _ => {
            let end = input.find(char::is_whitespace).unwrap_or(input.len());
            Ok((input[..end].to_owned(), &input[end..]))
        }
    }
}

/// Reads triples from `reader` into `builder`, returning the number of triples added.
pub fn load_into<R: BufRead>(reader: R, builder: &mut GraphBuilder) -> Result<usize, GraphError> {
    let mut count = 0;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        match parse_line(&line) {
            Ok(Some((s, p, o))) => {
                builder.add(&s, &p, &o);
                count += 1;
            }
            Ok(None) => {}
            Err(GraphError::Parse(msg)) => {
                return Err(GraphError::Parse(format!("line {}: {msg}", lineno + 1)))
            }
            Err(e) => return Err(e),
        }
    }
    Ok(count)
}

/// Reads a whole graph from `reader`.
pub fn load<R: BufRead>(reader: R) -> Result<Graph, GraphError> {
    let mut builder = GraphBuilder::new();
    load_into(reader, &mut builder)?;
    Ok(builder.build())
}

/// Writes `graph` in the bare whitespace-separated syntax understood by [`load`].
pub fn write<W: Write>(graph: &Graph, mut writer: W) -> Result<(), GraphError> {
    let dict = graph.dictionary();
    for t in graph.triples() {
        let s = dict.node_label(t.subject).expect("node label must exist");
        let p = dict
            .predicate_label(t.predicate)
            .expect("predicate label must exist");
        let o = dict.node_label(t.object).expect("node label must exist");
        writeln!(writer, "{s}\t{p}\t{o}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parse_bare_line() {
        let t = parse_line("alice knows bob").unwrap().unwrap();
        assert_eq!(t, ("alice".into(), "knows".into(), "bob".into()));
    }

    #[test]
    fn parse_ntriples_line() {
        let t = parse_line("<http://ex/a> <http://ex/knows> <http://ex/b> .")
            .unwrap()
            .unwrap();
        assert_eq!(t.1, "http://ex/knows");
    }

    #[test]
    fn parse_literal_object() {
        let t = parse_line("<a> <hasName> \"Alice Smith\" .")
            .unwrap()
            .unwrap();
        assert_eq!(t.2, "Alice Smith");
    }

    #[test]
    fn parse_literal_with_datatype() {
        let t = parse_line("<a> <age> \"42\"^^<http://www.w3.org/2001/XMLSchema#integer> .");
        // datatype tag is dropped; the remainder after the literal is the tag which
        // parses as trailing content only if it forms a 4th term — it must not.
        assert!(t.is_ok(), "datatype literals should parse: {t:?}");
    }

    #[test]
    fn skip_comments_and_blanks() {
        assert_eq!(parse_line("").unwrap(), None);
        assert_eq!(parse_line("   ").unwrap(), None);
        assert_eq!(parse_line("# a comment").unwrap(), None);
    }

    #[test]
    fn reject_wrong_arity() {
        assert!(parse_line("just two").is_err());
        assert!(parse_line("a b c d").is_err());
    }

    #[test]
    fn reject_unterminated_iri() {
        assert!(parse_line("<a <b> <c>").is_err());
    }

    #[test]
    fn load_and_roundtrip() {
        let text = "a p b\nb p c\n# comment\na q c\n";
        let g = load(Cursor::new(text)).unwrap();
        assert_eq!(g.triple_count(), 3);
        let mut out = Vec::new();
        write(&g, &mut out).unwrap();
        let g2 = load(Cursor::new(out)).unwrap();
        assert_eq!(g2.triple_count(), 3);
        assert_eq!(g2.predicate_count(), 2);
    }

    #[test]
    fn load_reports_line_numbers() {
        let text = "a p b\nbroken line here extra\n";
        let err = load(Cursor::new(text)).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }
}

//! The CSR (compressed sparse row) storage backend.
//!
//! Per predicate, both adjacency directions live in two contiguous arrays:
//! `offsets[v] .. offsets[v + 1]` indexes into `targets`, targets are sorted
//! within every node's range, and the distinct `(subject, object)` pairs are
//! kept sorted for full scans. Lookups are two array reads plus a slice —
//! no hashing, no pointer chasing — and membership probes binary-search a
//! contiguous neighbor range, which is what lets the evaluator's galloping
//! intersections ([`crate::slices`]) pay off.

use crate::ids::{NodeId, PredId};
use crate::slices::contains_sorted;
use crate::store::{GraphStore, StoreKind};

/// Adjacency in one direction for a single predicate, as CSR over the graph's
/// dense node-identifier space.
#[derive(Debug, Clone, Default)]
struct Csr {
    /// `offsets[v]..offsets[v+1]` indexes into `targets` for source node `v`.
    offsets: Vec<u32>,
    /// Neighbor lists, sorted within each source node's range.
    targets: Vec<NodeId>,
}

impl Csr {
    /// Builds one direction from `(source, target)` pairs that are already
    /// sorted by source (targets sorted within each source run) and deduped.
    fn from_sorted(num_nodes: usize, pairs: &[(NodeId, NodeId)]) -> Self {
        let mut offsets = vec![0u32; num_nodes + 1];
        for &(src, _) in pairs {
            offsets[src.index() + 1] += 1;
        }
        for i in 0..num_nodes {
            offsets[i + 1] += offsets[i];
        }
        let targets = pairs.iter().map(|&(_, dst)| dst).collect();
        Csr { offsets, targets }
    }

    #[inline]
    fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let i = v.index();
        if i + 1 >= self.offsets.len() {
            return &[];
        }
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        &self.targets[lo..hi]
    }

    fn max_degree(&self) -> usize {
        self.offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0)
    }

    fn heap_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<u32>()
            + self.targets.capacity() * std::mem::size_of::<NodeId>()
    }
}

/// One predicate's edges in CSR form, indexed in both directions.
#[derive(Debug, Clone, Default)]
struct PredCsr {
    /// Distinct `(subject, object)` pairs, sorted by `(subject, object)`.
    pairs: Vec<(NodeId, NodeId)>,
    forward: Csr,
    backward: Csr,
    distinct_subjects: usize,
    distinct_objects: usize,
}

impl PredCsr {
    fn build(num_nodes: usize, mut pairs: Vec<(NodeId, NodeId)>) -> Self {
        pairs.sort_unstable();
        pairs.dedup();
        let forward = Csr::from_sorted(num_nodes, &pairs);
        let mut reversed: Vec<(NodeId, NodeId)> = pairs.iter().map(|&(s, o)| (o, s)).collect();
        reversed.sort_unstable();
        let backward = Csr::from_sorted(num_nodes, &reversed);
        let distinct_subjects = count_runs(pairs.iter().map(|&(s, _)| s));
        let distinct_objects = count_runs(reversed.iter().map(|&(o, _)| o));
        PredCsr {
            pairs,
            forward,
            backward,
            distinct_subjects,
            distinct_objects,
        }
    }
}

fn count_runs<I: Iterator<Item = NodeId>>(sorted: I) -> usize {
    let mut count = 0;
    let mut prev: Option<NodeId> = None;
    for v in sorted {
        if prev != Some(v) {
            count += 1;
            prev = Some(v);
        }
    }
    count
}

/// The CSR storage backend: every predicate's forward and reverse adjacency
/// in sorted, contiguous arrays, built once and immutable afterwards.
#[derive(Debug, Clone, Default)]
pub struct CsrStore {
    predicates: Vec<PredCsr>,
    num_triples: usize,
}

impl CsrStore {
    /// Builds the store from per-predicate raw (possibly duplicated) edge
    /// lists. `num_nodes` is the size of the dense node-identifier space.
    pub fn build(num_nodes: usize, edges_by_predicate: Vec<Vec<(NodeId, NodeId)>>) -> Self {
        let predicates: Vec<PredCsr> = edges_by_predicate
            .into_iter()
            .map(|pairs| PredCsr::build(num_nodes, pairs))
            .collect();
        let num_triples = predicates.iter().map(|p| p.pairs.len()).sum();
        CsrStore {
            predicates,
            num_triples,
        }
    }

    #[inline]
    fn pred(&self, p: PredId) -> &PredCsr {
        &self.predicates[p.index()]
    }
}

impl GraphStore for CsrStore {
    fn kind(&self) -> StoreKind {
        StoreKind::Csr
    }

    fn num_predicates(&self) -> usize {
        self.predicates.len()
    }

    fn triple_count(&self) -> usize {
        self.num_triples
    }

    #[inline]
    fn cardinality(&self, p: PredId) -> usize {
        self.pred(p).pairs.len()
    }

    #[inline]
    fn pairs(&self, p: PredId) -> std::borrow::Cow<'_, [(NodeId, NodeId)]> {
        std::borrow::Cow::Borrowed(&self.pred(p).pairs)
    }

    fn neighbors_sorted(&self) -> bool {
        true
    }

    #[inline]
    fn objects_of(&self, p: PredId, s: NodeId) -> &[NodeId] {
        self.pred(p).forward.neighbors(s)
    }

    #[inline]
    fn subjects_of(&self, p: PredId, o: NodeId) -> &[NodeId] {
        self.pred(p).backward.neighbors(o)
    }

    #[inline]
    fn has_triple(&self, s: NodeId, p: PredId, o: NodeId) -> bool {
        contains_sorted(self.pred(p).forward.neighbors(s), o)
    }

    fn distinct_subjects(&self, p: PredId) -> usize {
        self.pred(p).distinct_subjects
    }

    fn distinct_objects(&self, p: PredId) -> usize {
        self.pred(p).distinct_objects
    }

    fn max_out_degree(&self, p: PredId) -> usize {
        self.pred(p).forward.max_degree()
    }

    fn max_in_degree(&self, p: PredId) -> usize {
        self.pred(p).backward.max_degree()
    }

    fn heap_bytes(&self) -> usize {
        self.predicates
            .iter()
            .map(|pred| {
                pred.pairs.capacity() * std::mem::size_of::<(NodeId, NodeId)>()
                    + pred.forward.heap_bytes()
                    + pred.backward.heap_bytes()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn sample() -> CsrStore {
        // Predicate 0: 0->1, 0->2, 1->2, 3->2, plus a duplicate of 0->1.
        // Predicate 1: empty.
        CsrStore::build(
            5,
            vec![
                vec![
                    (n(0), n(1)),
                    (n(0), n(2)),
                    (n(1), n(2)),
                    (n(3), n(2)),
                    (n(0), n(1)),
                ],
                vec![],
            ],
        )
    }

    #[test]
    fn duplicates_are_removed() {
        let s = sample();
        assert_eq!(s.cardinality(PredId(0)), 4);
        assert_eq!(s.triple_count(), 4);
        assert_eq!(s.num_predicates(), 2);
    }

    #[test]
    fn forward_and_backward_adjacency_sorted() {
        let s = sample();
        let p = PredId(0);
        assert_eq!(s.objects_of(p, n(0)), &[n(1), n(2)]);
        assert_eq!(s.objects_of(p, n(2)), &[] as &[NodeId]);
        assert_eq!(s.subjects_of(p, n(2)), &[n(0), n(1), n(3)]);
        assert_eq!(s.out_degree(p, n(0)), 2);
        assert_eq!(s.in_degree(p, n(2)), 3);
    }

    #[test]
    fn membership_and_counts() {
        let s = sample();
        let p = PredId(0);
        assert!(s.has_triple(n(0), p, n(1)));
        assert!(!s.has_triple(n(1), p, n(0)));
        assert_eq!(s.distinct_subjects(p), 3);
        assert_eq!(s.distinct_objects(p), 2);
        assert_eq!(s.max_out_degree(p), 2);
        assert_eq!(s.max_in_degree(p), 3);
    }

    #[test]
    fn empty_predicate_and_out_of_range_nodes() {
        let s = sample();
        let q = PredId(1);
        assert_eq!(s.cardinality(q), 0);
        assert!(s.pairs(q).is_empty());
        assert_eq!(s.max_out_degree(q), 0);
        assert_eq!(s.objects_of(PredId(0), n(100)), &[] as &[NodeId]);
        assert_eq!(s.subjects_of(PredId(0), n(100)), &[] as &[NodeId]);
    }

    #[test]
    fn heap_bytes_grow_with_edges() {
        let empty = CsrStore::build(0, vec![]);
        let s = sample();
        assert!(s.heap_bytes() > empty.heap_bytes());
        assert_eq!(s.kind(), StoreKind::Csr);
    }
}

//! Sorted-slice primitives: binary search, galloping search, and adaptive
//! set intersection over `NodeId` slices.
//!
//! Every adjacency list a [`GraphStore`](crate::store::GraphStore) hands out
//! is sorted, which turns the engine's hot operations — membership probes,
//! constrained edge expansion, candidate intersection — into searches over
//! contiguous memory instead of hash lookups. *Galloping* (exponential)
//! search makes the asymmetric case cheap: intersecting a small candidate
//! set against a long neighbor list costs `O(small · log large)` rather than
//! a walk over the long list.

use crate::ids::NodeId;

/// Index of the first element `>= target` in an ascending-sorted slice
/// (`slice.len()` when every element is smaller). Galloping/exponential
/// search: doubles the probe distance until it overshoots, then binary
/// searches the bracketed window, so the cost is logarithmic in the distance
/// to the answer rather than in the slice length.
#[inline]
pub fn gallop(slice: &[NodeId], target: NodeId) -> usize {
    if slice.is_empty() || slice[0] >= target {
        return 0;
    }
    // Invariant: slice[lo] < target.
    let mut lo = 0usize;
    let mut step = 1usize;
    while lo + step < slice.len() && slice[lo + step] < target {
        lo += step;
        step <<= 1;
    }
    let hi = (lo + step).min(slice.len());
    // Binary search in (lo, hi).
    lo + 1 + slice[lo + 1..hi].partition_point(|&x| x < target)
}

/// Membership probe on an ascending-sorted slice.
#[inline]
pub fn contains_sorted(slice: &[NodeId], target: NodeId) -> bool {
    slice.binary_search(&target).is_ok()
}

/// Intersects two ascending-sorted slices into `out` (which is cleared
/// first). Adaptive: heavily skewed inputs gallop through the longer slice;
/// comparable sizes merge linearly.
pub fn intersect_sorted(a: &[NodeId], b: &[NodeId], out: &mut Vec<NodeId>) {
    out.clear();
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return;
    }
    // Galloping pays once the size ratio covers its log factor.
    if large.len() / small.len() >= 16 {
        let mut rest = large;
        for &x in small {
            let skip = gallop(rest, x);
            rest = &rest[skip..];
            if rest.first() == Some(&x) {
                out.push(x);
            }
            if rest.is_empty() {
                break;
            }
        }
    } else {
        let mut i = 0;
        let mut j = 0;
        while i < small.len() && j < large.len() {
            match small[i].cmp(&large[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(small[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u32) -> NodeId {
        NodeId(v)
    }

    fn ns(vs: &[u32]) -> Vec<NodeId> {
        vs.iter().map(|&v| NodeId(v)).collect()
    }

    #[test]
    fn gallop_finds_first_not_less() {
        let s = ns(&[2, 4, 4, 8, 16, 32]);
        assert_eq!(gallop(&s, n(0)), 0);
        assert_eq!(gallop(&s, n(2)), 0);
        assert_eq!(gallop(&s, n(3)), 1);
        assert_eq!(gallop(&s, n(4)), 1);
        assert_eq!(gallop(&s, n(5)), 3);
        assert_eq!(gallop(&s, n(32)), 5);
        assert_eq!(gallop(&s, n(33)), 6);
        assert_eq!(gallop(&[], n(7)), 0);
    }

    #[test]
    fn gallop_agrees_with_binary_search_everywhere() {
        let s: Vec<NodeId> = (0..500).map(|i| NodeId(i * 3)).collect();
        for t in 0..1_600 {
            let expected = s.partition_point(|&x| x < n(t));
            assert_eq!(gallop(&s, n(t)), expected, "target {t}");
        }
    }

    #[test]
    fn contains_sorted_probes() {
        let s = ns(&[1, 5, 9]);
        assert!(contains_sorted(&s, n(5)));
        assert!(!contains_sorted(&s, n(4)));
        assert!(!contains_sorted(&[], n(4)));
    }

    #[test]
    fn intersection_merge_and_gallop_paths_agree() {
        let a = ns(&[3, 7, 900, 2000]);
        let long: Vec<NodeId> = (0..3000).filter(|i| i % 3 == 0).map(NodeId).collect();
        let mut via_gallop = Vec::new();
        intersect_sorted(&a, &long, &mut via_gallop); // ratio ≥ 16 → gallops
        assert_eq!(via_gallop, ns(&[3, 900]));
        let mut via_merge = Vec::new();
        let b = ns(&[0, 3, 6, 7, 900]);
        intersect_sorted(&b, &a, &mut via_merge); // comparable sizes → merges
        assert_eq!(via_merge, ns(&[3, 7, 900]));
    }

    #[test]
    fn intersection_edge_cases() {
        let mut out = vec![n(9)];
        intersect_sorted(&[], &ns(&[1, 2]), &mut out);
        assert!(out.is_empty(), "output is cleared even for empty inputs");
        intersect_sorted(&ns(&[1, 2, 3]), &ns(&[1, 2, 3]), &mut out);
        assert_eq!(out, ns(&[1, 2, 3]));
        intersect_sorted(&ns(&[1]), &ns(&[2]), &mut out);
        assert!(out.is_empty());
    }
}

//! The in-memory graph store: the [`GraphStore`] trait, backend selection,
//! and the [`Graph`] facade.
//!
//! A [`Graph`] is an immutable *value*: a dictionary-encoded, edge-labeled
//! directed multigraph (an RDF dataset), built by a
//! [`GraphBuilder`](crate::builder::GraphBuilder) and queried read-only by
//! all engines without locking. Dynamic data is handled by producing new
//! versions — [`Graph::apply`] takes a [`Mutation`] batch and returns the
//! next version, leaving every existing reader untouched (cheap on the delta
//! backend, which shares its base across versions).
//!
//! The physical layout behind the lookups is pluggable: every backend
//! implements [`GraphStore`], and a [`StoreKind`] selects one at build time
//! ([`GraphBuilder::build_with_store`](crate::builder::GraphBuilder::build_with_store))
//! or re-indexes an existing graph ([`Graph::with_store`]). Three backends
//! ship:
//!
//! * [`CsrStore`](crate::csr::CsrStore) (`StoreKind::Csr`, the default) —
//!   per-predicate forward/reverse adjacency in sorted, contiguous
//!   `offsets`/`targets` arrays,
//! * [`MapStore`](crate::map::MapStore) (`StoreKind::Map`) — hash-map
//!   adjacency, the seed-era edge-map layout, kept as the measured baseline,
//! * [`DeltaStore`](crate::delta::DeltaStore) (`StoreKind::Delta`) — an
//!   immutable CSR base plus sorted insert/tombstone overlays, for graphs
//!   that change while being served.

use std::borrow::Cow;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use crate::dictionary::Dictionary;
use crate::ids::{NodeId, PredId, Triple};
use crate::mutation::{EdgeDelta, Mutation, MutationOp, MutationOutcome};
use crate::stats::Catalog;
use crate::{CsrStore, DeltaStore, MapStore};

/// Default overlay fraction at which a delta-backed [`Graph::apply`]
/// compacts the overlay into a fresh CSR base (see
/// [`Graph::with_compaction_threshold`]).
pub const DEFAULT_COMPACTION_THRESHOLD: f64 = 0.25;

/// Which physical storage backend a graph is indexed with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StoreKind {
    /// Compressed sparse row: contiguous sorted adjacency arrays (default).
    #[default]
    Csr,
    /// Hash-map adjacency: one map per direction per predicate.
    Map,
    /// Immutable CSR base plus a mutable sorted insert/tombstone overlay —
    /// the backend for dynamic graphs ([`Graph::apply`]).
    Delta,
}

impl StoreKind {
    /// Parses a store name as accepted by the `--store` CLI flags.
    pub fn parse(value: &str) -> Result<Self, String> {
        match value {
            "csr" => Ok(StoreKind::Csr),
            "map" => Ok(StoreKind::Map),
            "delta" => Ok(StoreKind::Delta),
            other => Err(format!(
                "unrecognized store {other:?} (accepted: csr, map, delta)"
            )),
        }
    }

    /// The canonical name ([`StoreKind::parse`] accepts it back).
    pub fn name(self) -> &'static str {
        match self {
            StoreKind::Csr => "csr",
            StoreKind::Map => "map",
            StoreKind::Delta => "delta",
        }
    }
}

/// The storage-backend contract: per-predicate edge access paths over dense
/// node identifiers.
///
/// Contract shared by every backend, relied on by the evaluators:
///
/// * [`pairs`](GraphStore::pairs) enumerates each distinct edge of a
///   predicate exactly once (order and cost are backend-dependent: CSR hands
///   back its sorted contiguous array for free, the edge-map has to walk its
///   hash maps and materialize);
/// * [`objects_of`](GraphStore::objects_of) / [`subjects_of`](GraphStore::subjects_of)
///   return each neighbor exactly once; when
///   [`neighbors_sorted`](GraphStore::neighbors_sorted) is `true` the slices
///   are **ascending-sorted**, and callers may binary-search and gallop
///   ([`crate::slices`]) instead of scanning;
/// * all methods accept out-of-range nodes and return empty results for them.
pub trait GraphStore: std::fmt::Debug + Send + Sync {
    /// Which backend this is.
    fn kind(&self) -> StoreKind;

    /// Number of predicates indexed (empty ones included).
    fn num_predicates(&self) -> usize;

    /// Number of distinct triples across all predicates.
    fn triple_count(&self) -> usize;

    /// Number of distinct edges carrying predicate `p`.
    fn cardinality(&self, p: PredId) -> usize;

    /// All distinct `(subject, object)` pairs of predicate `p`. Borrowed and
    /// sorted for backends that keep a pair array (CSR); assembled on the
    /// fly, in adjacency order, for backends that do not (the edge-map).
    fn pairs(&self, p: PredId) -> Cow<'_, [(NodeId, NodeId)]>;

    /// Whether neighbor slices are ascending-sorted (enabling binary-search
    /// membership probes and galloping intersections in the evaluators).
    fn neighbors_sorted(&self) -> bool;

    /// Objects reachable from `s` over `p`.
    fn objects_of(&self, p: PredId, s: NodeId) -> &[NodeId];

    /// Subjects reaching `o` over `p`.
    fn subjects_of(&self, p: PredId, o: NodeId) -> &[NodeId];

    /// Whether the triple `(s, p, o)` is present.
    fn has_triple(&self, s: NodeId, p: PredId, o: NodeId) -> bool;

    /// Out-degree of `s` under `p`.
    #[inline]
    fn out_degree(&self, p: PredId, s: NodeId) -> usize {
        self.objects_of(p, s).len()
    }

    /// In-degree of `o` under `p`.
    #[inline]
    fn in_degree(&self, p: PredId, o: NodeId) -> usize {
        self.subjects_of(p, o).len()
    }

    /// Number of distinct subjects in `p`'s edges.
    fn distinct_subjects(&self, p: PredId) -> usize;

    /// Number of distinct objects in `p`'s edges.
    fn distinct_objects(&self, p: PredId) -> usize;

    /// Largest out-degree under `p` (0 for an empty predicate).
    fn max_out_degree(&self, p: PredId) -> usize;

    /// Largest in-degree under `p` (0 for an empty predicate).
    fn max_in_degree(&self, p: PredId) -> usize;

    /// Approximate heap footprint of the backend's index structures, in
    /// bytes. Divided by [`triple_count`](GraphStore::triple_count) this is
    /// the bytes-per-edge figure the `store_build` bench tracks.
    fn heap_bytes(&self) -> usize;
}

/// Iterator over one predicate's pairs that borrows when the backend can
/// lend its pair array and owns when the backend materializes scans.
enum PairsIter<'a> {
    Borrowed(std::slice::Iter<'a, (NodeId, NodeId)>),
    Owned(std::vec::IntoIter<(NodeId, NodeId)>),
}

impl Iterator for PairsIter<'_> {
    type Item = (NodeId, NodeId);

    fn next(&mut self) -> Option<(NodeId, NodeId)> {
        match self {
            PairsIter::Borrowed(it) => it.next().copied(),
            PairsIter::Owned(it) => it.next(),
        }
    }
}

/// The selected backend. An enum rather than a boxed trait object so the
/// per-lookup dispatch on the hot paths is a jump, not a vtable call, and so
/// [`Graph`] stays plainly `Clone`.
#[derive(Debug, Clone)]
enum Store {
    Csr(CsrStore),
    Map(MapStore),
    Delta(DeltaStore),
}

impl Store {
    fn build(kind: StoreKind, num_nodes: usize, edges: Vec<Vec<(NodeId, NodeId)>>) -> Self {
        match kind {
            StoreKind::Csr => Store::Csr(CsrStore::build(num_nodes, edges)),
            StoreKind::Map => Store::Map(MapStore::build(num_nodes, edges)),
            StoreKind::Delta => Store::Delta(DeltaStore::build(num_nodes, edges)),
        }
    }

    #[inline]
    fn as_dyn(&self) -> &(dyn GraphStore + 'static) {
        match self {
            Store::Csr(s) => s,
            Store::Map(s) => s,
            Store::Delta(s) => s,
        }
    }
}

/// An edge-labeled directed graph behind a selectable [`GraphStore`]
/// backend, with a precomputed statistics catalog.
///
/// Graphs are immutable values: every accessor takes `&self`, and
/// [`Graph::apply`] produces a *new* version rather than mutating in place,
/// so readers never need locks. On the [`StoreKind::Delta`] backend a new
/// version shares the CSR base, the dictionary (unless the batch interns new
/// labels), and every untouched predicate's statistics with its predecessor,
/// so applying a mutation costs `O(overlay + touched predicates)`; on the
/// other backends `apply` rebuilds the index (documented `O(|graph|)` — they
/// exist for static serving and as equivalence baselines).
#[derive(Debug, Clone)]
pub struct Graph {
    /// Shared across versions: a mutation clones the dictionary only when it
    /// interns a label this version has never seen.
    dictionary: Arc<Dictionary>,
    num_nodes: usize,
    store: Store,
    catalog: Catalog,
    compaction_threshold: f64,
}

impl Graph {
    /// Assembles a graph from raw per-predicate edge lists. Intended to be
    /// called by [`GraphBuilder::build`](crate::builder::GraphBuilder::build).
    pub(crate) fn from_parts(
        dictionary: Dictionary,
        num_nodes: usize,
        edges_by_predicate: Vec<Vec<(NodeId, NodeId)>>,
        kind: StoreKind,
    ) -> Self {
        Graph::from_shared_parts(
            Arc::new(dictionary),
            num_nodes,
            edges_by_predicate,
            kind,
            DEFAULT_COMPACTION_THRESHOLD,
        )
    }

    pub(crate) fn from_shared_parts(
        dictionary: Arc<Dictionary>,
        num_nodes: usize,
        edges_by_predicate: Vec<Vec<(NodeId, NodeId)>>,
        kind: StoreKind,
        compaction_threshold: f64,
    ) -> Self {
        let store = Store::build(kind, num_nodes, edges_by_predicate);
        let catalog = Catalog::compute(store.as_dyn(), num_nodes);
        Graph {
            dictionary,
            num_nodes,
            store,
            catalog,
            compaction_threshold,
        }
    }

    /// The shared dictionary handle, for constructing sibling graphs (e.g.
    /// vertex-partitioned shards) over the identical label space.
    pub(crate) fn shared_dictionary(&self) -> Arc<Dictionary> {
        Arc::clone(&self.dictionary)
    }

    /// Sets the overlay fraction at which delta-backed [`Graph::apply`]
    /// compacts (builder form; default [`DEFAULT_COMPACTION_THRESHOLD`]).
    /// `0.0` compacts after every mutating batch; the other backends ignore
    /// the knob.
    pub fn with_compaction_threshold(mut self, threshold: f64) -> Self {
        self.compaction_threshold = threshold.max(0.0);
        self
    }

    /// The overlay fraction at which delta-backed [`Graph::apply`] compacts.
    pub fn compaction_threshold(&self) -> f64 {
        self.compaction_threshold
    }

    /// For delta-backed graphs: `(overlay edges, overlay fraction of the
    /// base)`. `None` on the other backends.
    pub fn delta_stats(&self) -> Option<(usize, f64)> {
        match &self.store {
            Store::Delta(s) => Some((s.delta_len(), s.delta_fraction())),
            _ => None,
        }
    }

    /// Delta-overlay size in edges; 0 on the non-delta backends. Integer
    /// form of [`Graph::delta_stats`] for the metrics gauges.
    pub fn overlay_edges(&self) -> u64 {
        self.delta_stats().map_or(0, |(edges, _)| edges as u64)
    }

    /// Delta-overlay fraction of the base in parts per million; 0 on the
    /// non-delta backends. Gauges are integers, and ppm keeps three decimal
    /// places of the percentage without floating point on the wire.
    pub fn overlay_fraction_ppm(&self) -> u64 {
        self.delta_stats()
            .map_or(0, |(_, fraction)| (fraction * 1e6).round() as u64)
    }

    /// Applies a [`Mutation`] and returns the resulting graph version plus
    /// what actually changed. Operations resolve in order with set semantics
    /// (see [`Mutation`]); labels never seen before are interned, so the new
    /// version's dictionary extends this one's (identifiers are stable).
    ///
    /// On [`StoreKind::Delta`] this is the cheap path: the CSR base is
    /// shared, the overlay absorbs the net change, exact statistics are
    /// recomputed only for the touched predicates, and the overlay compacts
    /// into a fresh base when its fraction reaches
    /// [`Graph::compaction_threshold`]. The dictionary is shared with the
    /// predecessor version unless the batch interns a brand-new label (only
    /// such batches pay a dictionary copy). On `csr`/`map` the whole index
    /// is rebuilt (`O(|graph|)`).
    pub fn apply(&self, mutation: &Mutation) -> (Graph, MutationOutcome) {
        // Share the dictionary across versions unless this batch actually
        // introduces a label we have never interned.
        let needs_intern = mutation.ops().iter().any(|(_, s, p, o)| {
            self.dictionary.node_id(s).is_none()
                || self.dictionary.predicate_id(p).is_none()
                || self.dictionary.node_id(o).is_none()
        });
        let dictionary = if needs_intern {
            let mut extended = Dictionary::clone(&self.dictionary);
            for (_, s, p, o) in mutation.ops() {
                extended.intern_node(s);
                extended.intern_predicate(p);
                extended.intern_node(o);
            }
            Arc::new(extended)
        } else {
            Arc::clone(&self.dictionary)
        };

        // Resolve the ordered ops into net per-triple transitions.
        let mut net: HashMap<Triple, (bool, bool)> = HashMap::new();
        for (op, s, p, o) in mutation.ops() {
            let t = Triple::new(
                dictionary.node_id(s).expect("interned above"),
                dictionary.predicate_id(p).expect("interned above"),
                dictionary.node_id(o).expect("interned above"),
            );
            let entry = net.entry(t).or_insert_with(|| {
                let before = t.predicate.index() < self.predicate_count()
                    && self.has_triple(t.subject, t.predicate, t.object);
                (before, before)
            });
            entry.1 = matches!(op, MutationOp::Insert);
        }
        let mut inserts: Vec<Triple> = Vec::new();
        let mut removes: Vec<Triple> = Vec::new();
        for (t, (before, after)) in net {
            match (before, after) {
                (false, true) => inserts.push(t),
                (true, false) => removes.push(t),
                _ => {}
            }
        }
        inserts.sort_unstable();
        removes.sort_unstable();

        let mut outcome = MutationOutcome {
            inserted: inserts.len(),
            removed: removes.len(),
            compacted: false,
            delta: EdgeDelta::new(inserts.clone(), removes.clone()),
        };
        if inserts.is_empty() && removes.is_empty() && !needs_intern {
            // Nothing changed: no net triple transitions and no new labels
            // (a batch that interns a new label must still produce a new
            // version whose dictionary and store know the label).
            return (self.clone(), outcome);
        }

        let num_nodes = dictionary.node_count();
        let num_predicates = dictionary.predicate_count();
        let mut touched: Vec<PredId> = inserts
            .iter()
            .chain(removes.iter())
            .map(|t| t.predicate)
            .collect();
        touched.sort_unstable();
        touched.dedup();

        let store = match &self.store {
            Store::Delta(delta) => {
                let next = delta.with_mutation(num_predicates, &inserts, &removes);
                if next.delta_len() > 0 && next.delta_fraction() >= self.compaction_threshold {
                    outcome.compacted = true;
                    Store::Delta(next.compact(num_nodes))
                } else {
                    Store::Delta(next)
                }
            }
            _ => {
                // Static backends: rebuild from the merged triple set.
                let mut edges = vec![Vec::new(); num_predicates];
                let removed: HashSet<Triple> = removes.iter().copied().collect();
                for t in self.triples() {
                    if !removed.contains(&t) {
                        edges[t.predicate.index()].push((t.subject, t.object));
                    }
                }
                for t in &inserts {
                    edges[t.predicate.index()].push((t.subject, t.object));
                }
                Store::build(self.store_kind(), num_nodes, edges)
            }
        };
        let catalog = self.catalog.refreshed(store.as_dyn(), &touched, num_nodes);
        (
            Graph {
                dictionary,
                num_nodes,
                store,
                catalog,
                compaction_threshold: self.compaction_threshold,
            },
            outcome,
        )
    }

    /// Re-indexes this graph's triples into a different storage backend,
    /// reusing the dictionary (identifiers stay stable) and keeping the
    /// configured compaction threshold. Returns `self` unchanged when the
    /// backend already matches.
    pub fn with_store(self, kind: StoreKind) -> Self {
        if self.store_kind() == kind {
            return self;
        }
        let mut edges = vec![Vec::new(); self.predicate_count()];
        for t in self.triples() {
            edges[t.predicate.index()].push((t.subject, t.object));
        }
        Graph::from_shared_parts(
            Arc::clone(&self.dictionary),
            self.num_nodes,
            edges,
            kind,
            self.compaction_threshold,
        )
    }

    /// The storage backend, as the backend-agnostic [`GraphStore`] view.
    pub fn store(&self) -> &dyn GraphStore {
        self.store.as_dyn()
    }

    /// Which storage backend this graph is indexed with.
    pub fn store_kind(&self) -> StoreKind {
        match &self.store {
            Store::Csr(_) => StoreKind::Csr,
            Store::Map(_) => StoreKind::Map,
            Store::Delta(_) => StoreKind::Delta,
        }
    }

    /// The string dictionary used to encode this graph.
    pub fn dictionary(&self) -> &Dictionary {
        self.dictionary.as_ref()
    }

    /// Number of distinct nodes.
    pub fn node_count(&self) -> usize {
        self.num_nodes
    }

    /// Number of distinct predicates (edge labels).
    pub fn predicate_count(&self) -> usize {
        match &self.store {
            Store::Csr(s) => s.num_predicates(),
            Store::Map(s) => s.num_predicates(),
            Store::Delta(s) => s.num_predicates(),
        }
    }

    /// Number of distinct triples (labeled edges).
    pub fn triple_count(&self) -> usize {
        match &self.store {
            Store::Csr(s) => s.triple_count(),
            Store::Map(s) => s.triple_count(),
            Store::Delta(s) => s.triple_count(),
        }
    }

    /// The statistics catalog (1-gram and 2-gram edge-label statistics).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// All distinct `(subject, object)` pairs carrying predicate `p`
    /// (borrowed and sorted from the CSR backend; assembled per call by the
    /// edge-map backend).
    #[inline]
    pub fn pairs(&self, p: PredId) -> Cow<'_, [(NodeId, NodeId)]> {
        match &self.store {
            Store::Csr(s) => s.pairs(p),
            Store::Map(s) => s.pairs(p),
            Store::Delta(s) => s.pairs(p),
        }
    }

    /// Whether this graph's neighbor slices are ascending-sorted (see
    /// [`GraphStore::neighbors_sorted`]).
    #[inline]
    pub fn neighbors_sorted(&self) -> bool {
        match &self.store {
            Store::Csr(s) => s.neighbors_sorted(),
            Store::Map(s) => s.neighbors_sorted(),
            Store::Delta(s) => s.neighbors_sorted(),
        }
    }

    /// Objects reachable from `s` over predicate `p`.
    #[inline]
    pub fn objects_of(&self, p: PredId, s: NodeId) -> &[NodeId] {
        match &self.store {
            Store::Csr(st) => st.objects_of(p, s),
            Store::Map(st) => st.objects_of(p, s),
            Store::Delta(st) => st.objects_of(p, s),
        }
    }

    /// Subjects reaching `o` over predicate `p`.
    #[inline]
    pub fn subjects_of(&self, p: PredId, o: NodeId) -> &[NodeId] {
        match &self.store {
            Store::Csr(st) => st.subjects_of(p, o),
            Store::Map(st) => st.subjects_of(p, o),
            Store::Delta(st) => st.subjects_of(p, o),
        }
    }

    /// Whether the triple `(s, p, o)` is present.
    #[inline]
    pub fn has_triple(&self, s: NodeId, p: PredId, o: NodeId) -> bool {
        match &self.store {
            Store::Csr(st) => st.has_triple(s, p, o),
            Store::Map(st) => st.has_triple(s, p, o),
            Store::Delta(st) => st.has_triple(s, p, o),
        }
    }

    /// Out-degree of `s` under predicate `p`.
    #[inline]
    pub fn out_degree(&self, p: PredId, s: NodeId) -> usize {
        self.objects_of(p, s).len()
    }

    /// In-degree of `o` under predicate `p`.
    #[inline]
    pub fn in_degree(&self, p: PredId, o: NodeId) -> usize {
        self.subjects_of(p, o).len()
    }

    /// Number of edges carrying predicate `p`.
    pub fn predicate_cardinality(&self, p: PredId) -> usize {
        match &self.store {
            Store::Csr(s) => s.cardinality(p),
            Store::Map(s) => s.cardinality(p),
            Store::Delta(s) => s.cardinality(p),
        }
    }

    /// Iterates over every triple in the graph, grouped by predicate
    /// (borrowed, zero-copy iteration on the CSR backend; the edge-map
    /// materializes each predicate's scan as it goes).
    pub fn triples(&self) -> impl Iterator<Item = Triple> + '_ {
        (0..self.predicate_count()).flat_map(move |p| {
            let p = PredId(p as u32);
            let pairs: PairsIter<'_> = match self.pairs(p) {
                Cow::Borrowed(b) => PairsIter::Borrowed(b.iter()),
                Cow::Owned(v) => PairsIter::Owned(v.into_iter()),
            };
            pairs.map(move |(s, o)| Triple::new(s, p, o))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn sample_builder() -> GraphBuilder {
        let mut b = GraphBuilder::new();
        b.add("a", "knows", "b");
        b.add("b", "knows", "c");
        b.add("a", "likes", "c");
        b.add("a", "knows", "b"); // duplicate
        b
    }

    /// Like [`sample_builder`], plus a node whose neighbors arrive in
    /// non-ascending order — so the edge-map's arrival-order lists actually
    /// differ from CSR's sorted ones.
    fn disordered_builder() -> GraphBuilder {
        let mut b = sample_builder();
        b.add("a", "knows", "c"); // arrives after a-knows-b but sorts before it
        b
    }

    fn sample() -> Graph {
        sample_builder().build()
    }

    #[test]
    fn counts() {
        let g = sample();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.predicate_count(), 2);
        assert_eq!(g.triple_count(), 3);
        assert_eq!(g.store_kind(), StoreKind::Csr, "CSR is the default");
    }

    #[test]
    fn lookups_by_label() {
        let g = sample();
        let knows = g.dictionary().predicate_id("knows").unwrap();
        let a = g.dictionary().node_id("a").unwrap();
        let b = g.dictionary().node_id("b").unwrap();
        assert_eq!(g.objects_of(knows, a), &[b]);
        assert!(g.has_triple(a, knows, b));
        assert_eq!(g.predicate_cardinality(knows), 2);
        assert_eq!(g.out_degree(knows, a), 1);
        assert_eq!(g.in_degree(knows, b), 1);
    }

    #[test]
    fn triples_iterator_covers_everything() {
        let g = sample();
        let all: Vec<_> = g.triples().collect();
        assert_eq!(all.len(), 3);
        assert!(all
            .iter()
            .all(|t| g.has_triple(t.subject, t.predicate, t.object)));
    }

    #[test]
    fn catalog_is_computed() {
        let g = sample();
        let knows = g.dictionary().predicate_id("knows").unwrap();
        assert_eq!(g.catalog().unigram(knows).cardinality, 2);
    }

    #[test]
    fn absent_edges() {
        let g = sample();
        let likes = g.dictionary().predicate_id("likes").unwrap();
        let b = g.dictionary().node_id("b").unwrap();
        let c = g.dictionary().node_id("c").unwrap();
        assert!(!g.has_triple(b, likes, c));
        assert_eq!(g.objects_of(likes, b), &[] as &[NodeId]);
        let _ = PredId(0);
    }

    #[test]
    fn store_kinds_parse_and_roundtrip() {
        assert_eq!(StoreKind::parse("csr"), Ok(StoreKind::Csr));
        assert_eq!(StoreKind::parse("map"), Ok(StoreKind::Map));
        assert_eq!(StoreKind::parse("delta"), Ok(StoreKind::Delta));
        assert_eq!(StoreKind::default(), StoreKind::Csr);
        let err = StoreKind::parse("btree").unwrap_err();
        assert!(
            err.contains("btree")
                && err.contains("csr")
                && err.contains("map")
                && err.contains("delta")
        );
        for kind in [StoreKind::Csr, StoreKind::Map, StoreKind::Delta] {
            assert_eq!(StoreKind::parse(kind.name()), Ok(kind));
        }
    }

    #[test]
    fn backends_answer_identically() {
        let csr = disordered_builder().build_with_store(StoreKind::Csr);
        let map = disordered_builder().build_with_store(StoreKind::Map);
        assert_eq!(map.store_kind(), StoreKind::Map);
        assert_eq!(csr.triple_count(), map.triple_count());
        for p in 0..csr.predicate_count() {
            let p = PredId(p as u32);
            let mut map_pairs = map.pairs(p).into_owned();
            map_pairs.sort_unstable();
            assert_eq!(csr.pairs(p).as_ref(), map_pairs.as_slice());
            for node in 0..csr.node_count() {
                let node = NodeId(node as u32);
                // The edge-map's neighbor lists are arrival-ordered, not
                // sorted; compare as sets.
                let mut map_objects = map.objects_of(p, node).to_vec();
                map_objects.sort_unstable();
                assert_eq!(csr.objects_of(p, node), map_objects.as_slice());
                let mut map_subjects = map.subjects_of(p, node).to_vec();
                map_subjects.sort_unstable();
                assert_eq!(csr.subjects_of(p, node), map_subjects.as_slice());
            }
            assert_eq!(
                csr.catalog().unigram(p),
                map.catalog().unigram(p),
                "statistics are layout-independent"
            );
        }
    }

    #[test]
    fn with_store_reindexes_in_place() {
        let g = sample();
        let dictionary_ptr = g.dictionary().node_id("a");
        let as_map = g.clone().with_store(StoreKind::Map);
        assert_eq!(as_map.store_kind(), StoreKind::Map);
        assert_eq!(as_map.triple_count(), g.triple_count());
        assert_eq!(as_map.dictionary().node_id("a"), dictionary_ptr);
        let back = as_map.with_store(StoreKind::Csr);
        assert_eq!(back.store_kind(), StoreKind::Csr);
        assert_eq!(back.triple_count(), 3);
        // Same-kind conversion is the identity.
        assert_eq!(
            g.clone().with_store(StoreKind::Csr).store_kind(),
            StoreKind::Csr
        );
    }

    #[test]
    fn store_trait_view() {
        let g = sample();
        let store = g.store();
        assert_eq!(store.kind(), StoreKind::Csr);
        assert_eq!(store.triple_count(), 3);
        assert!(store.heap_bytes() > 0);
    }

    #[test]
    fn apply_mutates_every_backend_identically() {
        let mutation = Mutation::new()
            .insert("c", "knows", "a")
            .remove("a", "likes", "c")
            .insert("a", "admires", "d");
        for kind in [StoreKind::Csr, StoreKind::Map, StoreKind::Delta] {
            let g = sample_builder().build_with_store(kind);
            let (next, outcome) = g.apply(&mutation);
            assert_eq!(outcome.inserted, 2, "{kind:?}");
            assert_eq!(outcome.removed, 1, "{kind:?}");
            assert_eq!(next.store_kind(), kind);
            assert_eq!(next.triple_count(), 4, "{kind:?}");
            assert_eq!(next.node_count(), 4, "new node d interned");
            assert_eq!(next.predicate_count(), 3, "new predicate admires");
            let d = next.dictionary();
            let knows = d.predicate_id("knows").unwrap();
            let likes = d.predicate_id("likes").unwrap();
            let admires = d.predicate_id("admires").unwrap();
            let (a, c) = (d.node_id("a").unwrap(), d.node_id("c").unwrap());
            assert!(next.has_triple(c, knows, a), "{kind:?}");
            assert!(!next.has_triple(a, likes, c), "{kind:?}");
            assert_eq!(next.predicate_cardinality(admires), 1);
            assert_eq!(
                next.catalog().unigram(knows).cardinality,
                3,
                "{kind:?}: catalog refreshed for touched predicates"
            );
            // The original version is untouched.
            assert_eq!(g.triple_count(), 3);
            assert!(g.has_triple(a, likes, c));
        }
    }

    #[test]
    fn apply_reports_the_net_edge_delta() {
        let mutation = Mutation::new()
            .insert("c", "knows", "a")
            .remove("a", "likes", "c")
            .insert("a", "knows", "b") // already present: absent from the delta
            .insert("a", "admires", "d");
        let g = sample_builder().build_with_store(StoreKind::Delta);
        let (next, outcome) = g.apply(&mutation);
        let d = next.dictionary();
        let knows = d.predicate_id("knows").unwrap();
        let likes = d.predicate_id("likes").unwrap();
        let admires = d.predicate_id("admires").unwrap();
        let node = |l: &str| d.node_id(l).unwrap();
        assert_eq!(outcome.delta.len(), 3);
        assert_eq!(
            outcome.delta.inserted_for(knows),
            &[Triple::new(node("c"), knows, node("a"))]
        );
        assert_eq!(
            outcome.delta.inserted_for(admires),
            &[Triple::new(node("a"), admires, node("d"))]
        );
        assert_eq!(
            outcome.delta.removed_for(likes),
            &[Triple::new(node("a"), likes, node("c"))]
        );
        assert_eq!(outcome.delta.removed_for(knows), &[] as &[Triple]);
        let mut preds = outcome.delta.predicates();
        preds.sort_unstable();
        assert_eq!(preds, {
            let mut expected = vec![knows, likes, admires];
            expected.sort_unstable();
            expected
        });
        // The counters and the delta can never drift apart.
        assert_eq!(outcome.inserted, outcome.delta.inserted().len());
        assert_eq!(outcome.removed, outcome.delta.removed().len());
    }

    #[test]
    fn apply_has_set_semantics_and_resolves_in_order() {
        let g = sample_builder().build_with_store(StoreKind::Delta);
        let noop = Mutation::new()
            .insert("a", "knows", "b") // already present
            .remove("zz", "knows", "zz"); // never present (new labels intern)
        let (next, outcome) = g.apply(&noop);
        assert_eq!((outcome.inserted, outcome.removed), (0, 0));
        assert_eq!(next.triple_count(), 3);
        assert_eq!(next.node_count(), 4, "labels intern even on no-op ops");

        // Remove-then-insert within one batch leaves the triple present and
        // counts as neither an insert nor a removal (it was present before).
        let churn = Mutation::new()
            .remove("a", "knows", "b")
            .insert("a", "knows", "b");
        let (next, outcome) = g.apply(&churn);
        assert_eq!((outcome.inserted, outcome.removed), (0, 0));
        let d = next.dictionary();
        assert!(next.has_triple(
            d.node_id("a").unwrap(),
            d.predicate_id("knows").unwrap(),
            d.node_id("b").unwrap()
        ));
    }

    #[test]
    fn apply_shares_the_dictionary_unless_labels_are_new() {
        let g = sample_builder().build_with_store(StoreKind::Delta);
        // Known labels only: the dictionary Arc is shared across versions.
        let (next, _) = g.apply(&Mutation::new().insert("c", "knows", "a"));
        assert!(std::ptr::eq(g.dictionary(), next.dictionary()));
        // A new label forces a (one-time) extended copy.
        let (extended, _) = next.apply(&Mutation::new().insert("c", "knows", "zz"));
        assert!(!std::ptr::eq(next.dictionary(), extended.dictionary()));
        assert_eq!(extended.node_count(), 4);

        // An all-no-op batch that interns a new *predicate* label still
        // produces a version that knows the label (index entry included).
        let (noop, outcome) = g.apply(&Mutation::new().remove("a", "admires", "b"));
        assert_eq!((outcome.inserted, outcome.removed), (0, 0));
        let admires = noop.dictionary().predicate_id("admires").unwrap();
        assert_eq!(noop.predicate_cardinality(admires), 0);
        assert_eq!(noop.predicate_count(), 3);
    }

    #[test]
    fn with_store_keeps_the_compaction_threshold_and_shares_the_dictionary() {
        let g = sample().with_compaction_threshold(0.0);
        let delta = g.clone().with_store(StoreKind::Delta);
        assert_eq!(delta.compaction_threshold(), 0.0, "threshold survives");
        assert!(std::ptr::eq(g.dictionary(), delta.dictionary()));
        let (_, outcome) = delta.apply(&Mutation::new().insert("a", "knows", "c"));
        assert!(outcome.compacted, "the preserved 0.0 threshold compacts");
    }

    #[test]
    fn delta_compaction_respects_the_threshold() {
        let g = sample_builder()
            .build_with_store(StoreKind::Delta)
            .with_compaction_threshold(10.0);
        assert_eq!(g.delta_stats(), Some((0, 0.0)));
        assert!(sample().delta_stats().is_none(), "csr has no overlay");

        let (grown, outcome) = g.apply(&Mutation::new().insert("x", "knows", "y"));
        assert!(!outcome.compacted, "threshold 10.0 never compacts here");
        let (pending, fraction) = grown.delta_stats().unwrap();
        assert_eq!(pending, 1);
        assert!(fraction > 0.0);
        // Integer gauge forms track the float stats.
        assert_eq!(grown.overlay_edges(), 1);
        assert_eq!(
            grown.overlay_fraction_ppm(),
            (fraction * 1e6).round() as u64
        );
        assert!(grown.overlay_fraction_ppm() > 0);
        assert_eq!(sample().overlay_edges(), 0, "csr gauges read zero");
        assert_eq!(sample().overlay_fraction_ppm(), 0);

        let eager = grown.with_compaction_threshold(0.0);
        assert_eq!(eager.compaction_threshold(), 0.0);
        let (compacted, outcome) = eager.apply(&Mutation::new().insert("x", "knows", "z"));
        assert!(outcome.compacted, "threshold 0.0 compacts every batch");
        assert_eq!(compacted.delta_stats(), Some((0, 0.0)));
        assert_eq!(compacted.triple_count(), 5);
    }
}

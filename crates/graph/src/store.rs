//! The in-memory graph store: the [`GraphStore`] trait, backend selection,
//! and the [`Graph`] facade.
//!
//! A [`Graph`] is an immutable, dictionary-encoded, edge-labeled directed
//! multigraph (an RDF dataset), built once by a
//! [`GraphBuilder`](crate::builder::GraphBuilder) and then queried read-only
//! by all engines. Immutability after build keeps the evaluators free of
//! locking and matches the paper's setting (a static dataset loaded into
//! each system before the benchmark).
//!
//! The physical layout behind the lookups is pluggable: every backend
//! implements [`GraphStore`], and a [`StoreKind`] selects one at build time
//! ([`GraphBuilder::build_with_store`](crate::builder::GraphBuilder::build_with_store))
//! or re-indexes an existing graph ([`Graph::with_store`]). Two backends
//! ship:
//!
//! * [`CsrStore`](crate::csr::CsrStore) (`StoreKind::Csr`, the default) —
//!   per-predicate forward/reverse adjacency in sorted, contiguous
//!   `offsets`/`targets` arrays,
//! * [`MapStore`](crate::map::MapStore) (`StoreKind::Map`) — hash-map
//!   adjacency, the seed-era edge-map layout, kept as the measured baseline.

use std::borrow::Cow;

use crate::dictionary::Dictionary;
use crate::ids::{NodeId, PredId, Triple};
use crate::stats::Catalog;
use crate::{CsrStore, MapStore};

/// Which physical storage backend a graph is indexed with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StoreKind {
    /// Compressed sparse row: contiguous sorted adjacency arrays (default).
    #[default]
    Csr,
    /// Hash-map adjacency: one map per direction per predicate.
    Map,
}

impl StoreKind {
    /// Parses a store name as accepted by the `--store` CLI flags.
    pub fn parse(value: &str) -> Result<Self, String> {
        match value {
            "csr" => Ok(StoreKind::Csr),
            "map" => Ok(StoreKind::Map),
            other => Err(format!("unrecognized store {other:?} (accepted: csr, map)")),
        }
    }

    /// The canonical name ([`StoreKind::parse`] accepts it back).
    pub fn name(self) -> &'static str {
        match self {
            StoreKind::Csr => "csr",
            StoreKind::Map => "map",
        }
    }
}

/// The storage-backend contract: per-predicate edge access paths over dense
/// node identifiers.
///
/// Contract shared by every backend, relied on by the evaluators:
///
/// * [`pairs`](GraphStore::pairs) enumerates each distinct edge of a
///   predicate exactly once (order and cost are backend-dependent: CSR hands
///   back its sorted contiguous array for free, the edge-map has to walk its
///   hash maps and materialize);
/// * [`objects_of`](GraphStore::objects_of) / [`subjects_of`](GraphStore::subjects_of)
///   return each neighbor exactly once; when
///   [`neighbors_sorted`](GraphStore::neighbors_sorted) is `true` the slices
///   are **ascending-sorted**, and callers may binary-search and gallop
///   ([`crate::slices`]) instead of scanning;
/// * all methods accept out-of-range nodes and return empty results for them.
pub trait GraphStore: std::fmt::Debug + Send + Sync {
    /// Which backend this is.
    fn kind(&self) -> StoreKind;

    /// Number of predicates indexed (empty ones included).
    fn num_predicates(&self) -> usize;

    /// Number of distinct triples across all predicates.
    fn triple_count(&self) -> usize;

    /// Number of distinct edges carrying predicate `p`.
    fn cardinality(&self, p: PredId) -> usize;

    /// All distinct `(subject, object)` pairs of predicate `p`. Borrowed and
    /// sorted for backends that keep a pair array (CSR); assembled on the
    /// fly, in adjacency order, for backends that do not (the edge-map).
    fn pairs(&self, p: PredId) -> Cow<'_, [(NodeId, NodeId)]>;

    /// Whether neighbor slices are ascending-sorted (enabling binary-search
    /// membership probes and galloping intersections in the evaluators).
    fn neighbors_sorted(&self) -> bool;

    /// Objects reachable from `s` over `p`.
    fn objects_of(&self, p: PredId, s: NodeId) -> &[NodeId];

    /// Subjects reaching `o` over `p`.
    fn subjects_of(&self, p: PredId, o: NodeId) -> &[NodeId];

    /// Whether the triple `(s, p, o)` is present.
    fn has_triple(&self, s: NodeId, p: PredId, o: NodeId) -> bool;

    /// Out-degree of `s` under `p`.
    #[inline]
    fn out_degree(&self, p: PredId, s: NodeId) -> usize {
        self.objects_of(p, s).len()
    }

    /// In-degree of `o` under `p`.
    #[inline]
    fn in_degree(&self, p: PredId, o: NodeId) -> usize {
        self.subjects_of(p, o).len()
    }

    /// Number of distinct subjects in `p`'s edges.
    fn distinct_subjects(&self, p: PredId) -> usize;

    /// Number of distinct objects in `p`'s edges.
    fn distinct_objects(&self, p: PredId) -> usize;

    /// Largest out-degree under `p` (0 for an empty predicate).
    fn max_out_degree(&self, p: PredId) -> usize;

    /// Largest in-degree under `p` (0 for an empty predicate).
    fn max_in_degree(&self, p: PredId) -> usize;

    /// Approximate heap footprint of the backend's index structures, in
    /// bytes. Divided by [`triple_count`](GraphStore::triple_count) this is
    /// the bytes-per-edge figure the `store_build` bench tracks.
    fn heap_bytes(&self) -> usize;
}

/// Iterator over one predicate's pairs that borrows when the backend can
/// lend its pair array and owns when the backend materializes scans.
enum PairsIter<'a> {
    Borrowed(std::slice::Iter<'a, (NodeId, NodeId)>),
    Owned(std::vec::IntoIter<(NodeId, NodeId)>),
}

impl Iterator for PairsIter<'_> {
    type Item = (NodeId, NodeId);

    fn next(&mut self) -> Option<(NodeId, NodeId)> {
        match self {
            PairsIter::Borrowed(it) => it.next().copied(),
            PairsIter::Owned(it) => it.next(),
        }
    }
}

/// The selected backend. An enum rather than a boxed trait object so the
/// per-lookup dispatch on the hot paths is a jump, not a vtable call, and so
/// [`Graph`] stays plainly `Clone`.
#[derive(Debug, Clone)]
enum Store {
    Csr(CsrStore),
    Map(MapStore),
}

impl Store {
    fn build(kind: StoreKind, num_nodes: usize, edges: Vec<Vec<(NodeId, NodeId)>>) -> Self {
        match kind {
            StoreKind::Csr => Store::Csr(CsrStore::build(num_nodes, edges)),
            StoreKind::Map => Store::Map(MapStore::build(num_nodes, edges)),
        }
    }

    #[inline]
    fn as_dyn(&self) -> &(dyn GraphStore + 'static) {
        match self {
            Store::Csr(s) => s,
            Store::Map(s) => s,
        }
    }
}

/// An immutable edge-labeled directed graph behind a selectable
/// [`GraphStore`] backend, with a precomputed statistics catalog.
#[derive(Debug, Clone)]
pub struct Graph {
    dictionary: Dictionary,
    num_nodes: usize,
    store: Store,
    catalog: Catalog,
}

impl Graph {
    /// Assembles a graph from raw per-predicate edge lists. Intended to be
    /// called by [`GraphBuilder::build`](crate::builder::GraphBuilder::build).
    pub(crate) fn from_parts(
        dictionary: Dictionary,
        num_nodes: usize,
        edges_by_predicate: Vec<Vec<(NodeId, NodeId)>>,
        kind: StoreKind,
    ) -> Self {
        let store = Store::build(kind, num_nodes, edges_by_predicate);
        let catalog = Catalog::compute(store.as_dyn(), num_nodes);
        Graph {
            dictionary,
            num_nodes,
            store,
            catalog,
        }
    }

    /// Re-indexes this graph's triples into a different storage backend,
    /// reusing the dictionary (identifiers stay stable). Returns `self`
    /// unchanged when the backend already matches.
    pub fn with_store(self, kind: StoreKind) -> Self {
        if self.store_kind() == kind {
            return self;
        }
        let mut edges = vec![Vec::new(); self.predicate_count()];
        for t in self.triples() {
            edges[t.predicate.index()].push((t.subject, t.object));
        }
        Graph::from_parts(self.dictionary, self.num_nodes, edges, kind)
    }

    /// The storage backend, as the backend-agnostic [`GraphStore`] view.
    pub fn store(&self) -> &dyn GraphStore {
        self.store.as_dyn()
    }

    /// Which storage backend this graph is indexed with.
    pub fn store_kind(&self) -> StoreKind {
        match &self.store {
            Store::Csr(_) => StoreKind::Csr,
            Store::Map(_) => StoreKind::Map,
        }
    }

    /// The string dictionary used to encode this graph.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dictionary
    }

    /// Number of distinct nodes.
    pub fn node_count(&self) -> usize {
        self.num_nodes
    }

    /// Number of distinct predicates (edge labels).
    pub fn predicate_count(&self) -> usize {
        match &self.store {
            Store::Csr(s) => s.num_predicates(),
            Store::Map(s) => s.num_predicates(),
        }
    }

    /// Number of distinct triples (labeled edges).
    pub fn triple_count(&self) -> usize {
        match &self.store {
            Store::Csr(s) => s.triple_count(),
            Store::Map(s) => s.triple_count(),
        }
    }

    /// The statistics catalog (1-gram and 2-gram edge-label statistics).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// All distinct `(subject, object)` pairs carrying predicate `p`
    /// (borrowed and sorted from the CSR backend; assembled per call by the
    /// edge-map backend).
    #[inline]
    pub fn pairs(&self, p: PredId) -> Cow<'_, [(NodeId, NodeId)]> {
        match &self.store {
            Store::Csr(s) => s.pairs(p),
            Store::Map(s) => s.pairs(p),
        }
    }

    /// Whether this graph's neighbor slices are ascending-sorted (see
    /// [`GraphStore::neighbors_sorted`]).
    #[inline]
    pub fn neighbors_sorted(&self) -> bool {
        match &self.store {
            Store::Csr(s) => s.neighbors_sorted(),
            Store::Map(s) => s.neighbors_sorted(),
        }
    }

    /// Objects reachable from `s` over predicate `p`.
    #[inline]
    pub fn objects_of(&self, p: PredId, s: NodeId) -> &[NodeId] {
        match &self.store {
            Store::Csr(st) => st.objects_of(p, s),
            Store::Map(st) => st.objects_of(p, s),
        }
    }

    /// Subjects reaching `o` over predicate `p`.
    #[inline]
    pub fn subjects_of(&self, p: PredId, o: NodeId) -> &[NodeId] {
        match &self.store {
            Store::Csr(st) => st.subjects_of(p, o),
            Store::Map(st) => st.subjects_of(p, o),
        }
    }

    /// Whether the triple `(s, p, o)` is present.
    #[inline]
    pub fn has_triple(&self, s: NodeId, p: PredId, o: NodeId) -> bool {
        match &self.store {
            Store::Csr(st) => st.has_triple(s, p, o),
            Store::Map(st) => st.has_triple(s, p, o),
        }
    }

    /// Out-degree of `s` under predicate `p`.
    #[inline]
    pub fn out_degree(&self, p: PredId, s: NodeId) -> usize {
        self.objects_of(p, s).len()
    }

    /// In-degree of `o` under predicate `p`.
    #[inline]
    pub fn in_degree(&self, p: PredId, o: NodeId) -> usize {
        self.subjects_of(p, o).len()
    }

    /// Number of edges carrying predicate `p`.
    pub fn predicate_cardinality(&self, p: PredId) -> usize {
        match &self.store {
            Store::Csr(s) => s.cardinality(p),
            Store::Map(s) => s.cardinality(p),
        }
    }

    /// Iterates over every triple in the graph, grouped by predicate
    /// (borrowed, zero-copy iteration on the CSR backend; the edge-map
    /// materializes each predicate's scan as it goes).
    pub fn triples(&self) -> impl Iterator<Item = Triple> + '_ {
        (0..self.predicate_count()).flat_map(move |p| {
            let p = PredId(p as u32);
            let pairs: PairsIter<'_> = match self.pairs(p) {
                Cow::Borrowed(b) => PairsIter::Borrowed(b.iter()),
                Cow::Owned(v) => PairsIter::Owned(v.into_iter()),
            };
            pairs.map(move |(s, o)| Triple::new(s, p, o))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn sample_builder() -> GraphBuilder {
        let mut b = GraphBuilder::new();
        b.add("a", "knows", "b");
        b.add("b", "knows", "c");
        b.add("a", "likes", "c");
        b.add("a", "knows", "b"); // duplicate
        b
    }

    /// Like [`sample_builder`], plus a node whose neighbors arrive in
    /// non-ascending order — so the edge-map's arrival-order lists actually
    /// differ from CSR's sorted ones.
    fn disordered_builder() -> GraphBuilder {
        let mut b = sample_builder();
        b.add("a", "knows", "c"); // arrives after a-knows-b but sorts before it
        b
    }

    fn sample() -> Graph {
        sample_builder().build()
    }

    #[test]
    fn counts() {
        let g = sample();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.predicate_count(), 2);
        assert_eq!(g.triple_count(), 3);
        assert_eq!(g.store_kind(), StoreKind::Csr, "CSR is the default");
    }

    #[test]
    fn lookups_by_label() {
        let g = sample();
        let knows = g.dictionary().predicate_id("knows").unwrap();
        let a = g.dictionary().node_id("a").unwrap();
        let b = g.dictionary().node_id("b").unwrap();
        assert_eq!(g.objects_of(knows, a), &[b]);
        assert!(g.has_triple(a, knows, b));
        assert_eq!(g.predicate_cardinality(knows), 2);
        assert_eq!(g.out_degree(knows, a), 1);
        assert_eq!(g.in_degree(knows, b), 1);
    }

    #[test]
    fn triples_iterator_covers_everything() {
        let g = sample();
        let all: Vec<_> = g.triples().collect();
        assert_eq!(all.len(), 3);
        assert!(all
            .iter()
            .all(|t| g.has_triple(t.subject, t.predicate, t.object)));
    }

    #[test]
    fn catalog_is_computed() {
        let g = sample();
        let knows = g.dictionary().predicate_id("knows").unwrap();
        assert_eq!(g.catalog().unigram(knows).cardinality, 2);
    }

    #[test]
    fn absent_edges() {
        let g = sample();
        let likes = g.dictionary().predicate_id("likes").unwrap();
        let b = g.dictionary().node_id("b").unwrap();
        let c = g.dictionary().node_id("c").unwrap();
        assert!(!g.has_triple(b, likes, c));
        assert_eq!(g.objects_of(likes, b), &[] as &[NodeId]);
        let _ = PredId(0);
    }

    #[test]
    fn store_kinds_parse_and_roundtrip() {
        assert_eq!(StoreKind::parse("csr"), Ok(StoreKind::Csr));
        assert_eq!(StoreKind::parse("map"), Ok(StoreKind::Map));
        assert_eq!(StoreKind::default(), StoreKind::Csr);
        let err = StoreKind::parse("btree").unwrap_err();
        assert!(err.contains("btree") && err.contains("csr") && err.contains("map"));
        for kind in [StoreKind::Csr, StoreKind::Map] {
            assert_eq!(StoreKind::parse(kind.name()), Ok(kind));
        }
    }

    #[test]
    fn backends_answer_identically() {
        let csr = disordered_builder().build_with_store(StoreKind::Csr);
        let map = disordered_builder().build_with_store(StoreKind::Map);
        assert_eq!(map.store_kind(), StoreKind::Map);
        assert_eq!(csr.triple_count(), map.triple_count());
        for p in 0..csr.predicate_count() {
            let p = PredId(p as u32);
            let mut map_pairs = map.pairs(p).into_owned();
            map_pairs.sort_unstable();
            assert_eq!(csr.pairs(p).as_ref(), map_pairs.as_slice());
            for node in 0..csr.node_count() {
                let node = NodeId(node as u32);
                // The edge-map's neighbor lists are arrival-ordered, not
                // sorted; compare as sets.
                let mut map_objects = map.objects_of(p, node).to_vec();
                map_objects.sort_unstable();
                assert_eq!(csr.objects_of(p, node), map_objects.as_slice());
                let mut map_subjects = map.subjects_of(p, node).to_vec();
                map_subjects.sort_unstable();
                assert_eq!(csr.subjects_of(p, node), map_subjects.as_slice());
            }
            assert_eq!(
                csr.catalog().unigram(p),
                map.catalog().unigram(p),
                "statistics are layout-independent"
            );
        }
    }

    #[test]
    fn with_store_reindexes_in_place() {
        let g = sample();
        let dictionary_ptr = g.dictionary().node_id("a");
        let as_map = g.clone().with_store(StoreKind::Map);
        assert_eq!(as_map.store_kind(), StoreKind::Map);
        assert_eq!(as_map.triple_count(), g.triple_count());
        assert_eq!(as_map.dictionary().node_id("a"), dictionary_ptr);
        let back = as_map.with_store(StoreKind::Csr);
        assert_eq!(back.store_kind(), StoreKind::Csr);
        assert_eq!(back.triple_count(), 3);
        // Same-kind conversion is the identity.
        assert_eq!(
            g.clone().with_store(StoreKind::Csr).store_kind(),
            StoreKind::Csr
        );
    }

    #[test]
    fn store_trait_view() {
        let g = sample();
        let store = g.store();
        assert_eq!(store.kind(), StoreKind::Csr);
        assert_eq!(store.triple_count(), 3);
        assert!(store.heap_bytes() > 0);
    }
}

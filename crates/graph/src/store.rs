//! The in-memory graph store.
//!
//! A [`Graph`] is an immutable, dictionary-encoded, edge-labeled directed
//! multigraph (an RDF dataset), built once by a [`GraphBuilder`](crate::builder::GraphBuilder)
//! and then queried read-only by all engines. Immutability after build keeps
//! the evaluators free of locking and matches the paper's setting (a static
//! dataset loaded into each system before the benchmark).

use crate::dictionary::Dictionary;
use crate::ids::{NodeId, PredId, Triple};
use crate::index::PredicateIndex;
use crate::stats::Catalog;

/// An immutable edge-labeled directed graph with per-predicate indexes and a
/// precomputed statistics catalog.
#[derive(Debug, Clone)]
pub struct Graph {
    dictionary: Dictionary,
    num_nodes: usize,
    num_triples: usize,
    indexes: Vec<PredicateIndex>,
    catalog: Catalog,
}

impl Graph {
    /// Assembles a graph from its parts. Intended to be called by
    /// [`GraphBuilder::build`](crate::builder::GraphBuilder::build).
    pub(crate) fn from_parts(
        dictionary: Dictionary,
        num_nodes: usize,
        indexes: Vec<PredicateIndex>,
    ) -> Self {
        let num_triples = indexes.iter().map(PredicateIndex::len).sum();
        let catalog = Catalog::compute(&indexes, num_nodes);
        Graph {
            dictionary,
            num_nodes,
            num_triples,
            indexes,
            catalog,
        }
    }

    /// The string dictionary used to encode this graph.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dictionary
    }

    /// Number of distinct nodes.
    pub fn node_count(&self) -> usize {
        self.num_nodes
    }

    /// Number of distinct predicates (edge labels).
    pub fn predicate_count(&self) -> usize {
        self.indexes.len()
    }

    /// Number of distinct triples (labeled edges).
    pub fn triple_count(&self) -> usize {
        self.num_triples
    }

    /// The statistics catalog (1-gram and 2-gram edge-label statistics).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The index for one predicate. Panics if `p` is out of range; use
    /// [`Dictionary::predicate_id`](crate::dictionary::Dictionary::predicate_id)
    /// to obtain valid identifiers.
    #[allow(clippy::should_implement_trait)] // "index" is the natural name; std::ops::Index cannot take PredId ergonomically here
    pub fn index(&self, p: PredId) -> &PredicateIndex {
        &self.indexes[p.index()]
    }

    /// All distinct `(subject, object)` pairs carrying predicate `p`.
    pub fn pairs(&self, p: PredId) -> &[(NodeId, NodeId)] {
        self.index(p).pairs()
    }

    /// Objects reachable from `s` over predicate `p`.
    pub fn objects_of(&self, p: PredId, s: NodeId) -> &[NodeId] {
        self.index(p).objects_of(s)
    }

    /// Subjects reaching `o` over predicate `p`.
    pub fn subjects_of(&self, p: PredId, o: NodeId) -> &[NodeId] {
        self.index(p).subjects_of(o)
    }

    /// Whether the triple `(s, p, o)` is present.
    pub fn has_triple(&self, s: NodeId, p: PredId, o: NodeId) -> bool {
        self.index(p).has_edge(s, o)
    }

    /// Number of edges carrying predicate `p`.
    pub fn predicate_cardinality(&self, p: PredId) -> usize {
        self.index(p).len()
    }

    /// Iterates over every triple in the graph, grouped by predicate.
    pub fn triples(&self) -> impl Iterator<Item = Triple> + '_ {
        self.indexes.iter().enumerate().flat_map(|(p, idx)| {
            idx.pairs()
                .iter()
                .map(move |&(s, o)| Triple::new(s, PredId(p as u32), o))
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::GraphBuilder;
    use crate::ids::{NodeId, PredId};

    fn sample() -> crate::store::Graph {
        let mut b = GraphBuilder::new();
        b.add("a", "knows", "b");
        b.add("b", "knows", "c");
        b.add("a", "likes", "c");
        b.add("a", "knows", "b"); // duplicate
        b.build()
    }

    #[test]
    fn counts() {
        let g = sample();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.predicate_count(), 2);
        assert_eq!(g.triple_count(), 3);
    }

    #[test]
    fn lookups_by_label() {
        let g = sample();
        let knows = g.dictionary().predicate_id("knows").unwrap();
        let a = g.dictionary().node_id("a").unwrap();
        let b = g.dictionary().node_id("b").unwrap();
        assert_eq!(g.objects_of(knows, a), &[b]);
        assert!(g.has_triple(a, knows, b));
        assert_eq!(g.predicate_cardinality(knows), 2);
    }

    #[test]
    fn triples_iterator_covers_everything() {
        let g = sample();
        let all: Vec<_> = g.triples().collect();
        assert_eq!(all.len(), 3);
        assert!(all
            .iter()
            .all(|t| g.has_triple(t.subject, t.predicate, t.object)));
    }

    #[test]
    fn catalog_is_computed() {
        let g = sample();
        let knows = g.dictionary().predicate_id("knows").unwrap();
        assert_eq!(g.catalog().unigram(knows).cardinality, 2);
    }

    #[test]
    fn absent_edges() {
        let g = sample();
        let likes = g.dictionary().predicate_id("likes").unwrap();
        let b = g.dictionary().node_id("b").unwrap();
        let c = g.dictionary().node_id("c").unwrap();
        assert!(!g.has_triple(b, likes, c));
        assert_eq!(g.objects_of(likes, b), &[] as &[NodeId]);
        let _ = PredId(0);
    }
}

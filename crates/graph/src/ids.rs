//! Strongly-typed identifiers for dictionary-encoded graph elements.
//!
//! All strings (node IRIs/literals and predicate labels) are interned by the
//! [`Dictionary`](crate::dictionary::Dictionary) into dense `u32` identifiers.
//! Using newtypes instead of bare integers prevents accidentally mixing node
//! and predicate identifiers, which index different dictionaries.

use std::fmt;

/// Identifier of a graph node (an RDF subject or object) after dictionary
/// encoding. Node identifiers are dense: a graph with `n` distinct nodes uses
/// identifiers `0..n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Identifier of an edge label (an RDF predicate) after dictionary encoding.
/// Predicate identifiers are dense: a graph with `p` distinct predicates uses
/// identifiers `0..p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PredId(pub u32);

impl NodeId {
    /// Returns the identifier as a `usize`, suitable for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl PredId {
    /// Returns the identifier as a `usize`, suitable for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for PredId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<u32> for PredId {
    fn from(v: u32) -> Self {
        PredId(v)
    }
}

/// A dictionary-encoded RDF triple: a directed edge `subject --predicate--> object`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Triple {
    /// Source node of the edge.
    pub subject: NodeId,
    /// Edge label.
    pub predicate: PredId,
    /// Target node of the edge.
    pub object: NodeId,
}

impl Triple {
    /// Creates a new triple.
    #[inline]
    pub fn new(subject: NodeId, predicate: PredId, object: NodeId) -> Self {
        Triple {
            subject,
            predicate,
            object,
        }
    }
}

impl fmt::Display for Triple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({} {} {})", self.subject, self.predicate, self.object)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let n = NodeId(42);
        assert_eq!(n.index(), 42);
        assert_eq!(NodeId::from(42u32), n);
        assert_eq!(n.to_string(), "n42");
    }

    #[test]
    fn pred_id_roundtrip() {
        let p = PredId(7);
        assert_eq!(p.index(), 7);
        assert_eq!(PredId::from(7u32), p);
        assert_eq!(p.to_string(), "p7");
    }

    #[test]
    fn triple_ordering_is_spo() {
        let a = Triple::new(NodeId(1), PredId(0), NodeId(5));
        let b = Triple::new(NodeId(1), PredId(1), NodeId(0));
        let c = Triple::new(NodeId(2), PredId(0), NodeId(0));
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn triple_display() {
        let t = Triple::new(NodeId(1), PredId(2), NodeId(3));
        assert_eq!(t.to_string(), "(n1 p2 n3)");
    }
}

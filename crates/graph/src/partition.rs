//! Vertex partitioning: splitting one graph into subject-owned shards and
//! routing mutation batches to the shards they touch.
//!
//! The partition function is the classic `id % shards` owner assignment
//! (the "count % peers == index" idiom of dataflow shardings): a triple
//! lives on the shard that owns its **subject**. Every shard shares the
//! parent graph's dictionary and node-identifier space, so `NodeId`s and
//! `PredId`s mean the same thing on every shard — per-shard scan results
//! can be unioned without any identifier translation.
//!
//! Two invariants follow from subject ownership and are what the sharded
//! evaluator builds on:
//!
//! * **Disjointness** — a triple exists on exactly one shard, so
//!   per-predicate `(subject, object)` scans of distinct shards never
//!   overlap and union cleanly.
//! * **Dictionary alignment** — [`route_mutation`] keeps every shard's
//!   dictionary bit-identical to the dictionary an unsharded graph would
//!   have after the same batch: when a batch interns new labels, *every*
//!   shard receives the full operation list (non-owned operations rewritten
//!   to no-op removals, which still intern their labels in order); when it
//!   does not, only owning shards receive their sub-batch.

use std::collections::HashMap;

use crate::dictionary::Dictionary;
use crate::ids::NodeId;
use crate::mutation::{Mutation, MutationOp};
use crate::store::Graph;

/// The shard owning `subject` in an `shards`-way partition.
///
/// Dense node identifiers make plain modulo an even spread; callers must
/// pass `shards >= 1`.
pub fn shard_of(subject: NodeId, shards: usize) -> usize {
    debug_assert!(shards >= 1, "a partition has at least one shard");
    subject.0 as usize % shards
}

/// Splits `graph` into `shards` subject-partitioned graphs.
///
/// Every shard keeps the parent's dictionary (shared, not copied), node-id
/// space, storage backend and compaction threshold; shard `i` holds exactly
/// the triples whose subject satisfies [`shard_of`]` == i`. The union of
/// the shards' triples is the parent's triple set.
///
/// # Panics
///
/// Panics when `shards == 0`.
pub fn partition_graph(graph: &Graph, shards: usize) -> Vec<Graph> {
    assert!(shards >= 1, "cannot partition a graph into zero shards");
    let predicates = graph.predicate_count();
    let mut per_shard: Vec<Vec<Vec<(NodeId, NodeId)>>> = vec![vec![Vec::new(); predicates]; shards];
    for t in graph.triples() {
        per_shard[shard_of(t.subject, shards)][t.predicate.0 as usize].push((t.subject, t.object));
    }
    per_shard
        .into_iter()
        .map(|edges| {
            Graph::from_shared_parts(
                graph.shared_dictionary(),
                graph.node_count(),
                edges,
                graph.store_kind(),
                graph.compaction_threshold(),
            )
        })
        .collect()
}

/// Routes one mutation batch across `shards` subject-partitioned shards
/// whose dictionaries equal `dictionary` (any shard's — they are aligned).
///
/// Returns one entry per shard: `None` when the shard receives nothing this
/// batch (its epoch does not advance), `Some` with the operations it must
/// apply. Two regimes keep the shards' dictionaries bit-identical to an
/// unsharded graph applying the original batch:
///
/// * **No new labels** — operations split by subject owner; only owners
///   receive a sub-batch (operation order within each is preserved).
/// * **New labels** — every shard receives the *full* operation list in
///   order, with operations it does not own rewritten to [`MutationOp::
///   Remove`]: a guaranteed no-op on a non-owner (the triple's subject
///   lives elsewhere, so the triple cannot exist there) that still interns
///   the operation's three labels, exactly like the unsharded
///   `Graph::apply` does.
///
/// Subjects first seen inside the batch are owned by the shard of the
/// `NodeId` they *will* intern to, which this function predicts by walking
/// the operations in application order (interning assigns dense sequential
/// identifiers).
pub fn route_mutation(
    dictionary: &Dictionary,
    mutation: &Mutation,
    shards: usize,
) -> Vec<Option<Mutation>> {
    assert!(shards >= 1, "cannot route a mutation to zero shards");
    let needs_intern = mutation.ops().iter().any(|(_, s, p, o)| {
        dictionary.node_id(s).is_none()
            || dictionary.predicate_id(p).is_none()
            || dictionary.node_id(o).is_none()
    });

    // Predict each operation's subject id the way `Graph::apply` interns:
    // per op, subject first, then object (predicates occupy a separate id
    // space and cannot shift node ids).
    let mut pending: HashMap<&str, u32> = HashMap::new();
    let mut next_id = dictionary.node_count() as u32;
    let mut owners = Vec::with_capacity(mutation.ops().len());
    for (_, s, _, o) in mutation.ops() {
        let subject_id = match dictionary.node_id(s) {
            Some(id) => id.0,
            None => match pending.get(s.as_str()) {
                Some(&id) => id,
                None => {
                    let id = next_id;
                    pending.insert(s.as_str(), id);
                    next_id += 1;
                    id
                }
            },
        };
        owners.push(shard_of(NodeId(subject_id), shards));
        if dictionary.node_id(o).is_none() && !pending.contains_key(o.as_str()) {
            pending.insert(o.as_str(), next_id);
            next_id += 1;
        }
    }

    let mut batches: Vec<Option<Mutation>> = (0..shards).map(|_| None).collect();
    if needs_intern {
        // Full broadcast: every shard sees every label in order.
        for (shard, slot) in batches.iter_mut().enumerate() {
            let mut batch = Mutation::new();
            for (index, (op, s, p, o)) in mutation.ops().iter().enumerate() {
                let op = if owners[index] == shard {
                    *op
                } else {
                    MutationOp::Remove
                };
                batch.push(op, s, p, o);
            }
            *slot = Some(batch);
        }
    } else {
        // Owner-only sub-batches: untouched shards skip the epoch entirely.
        for (index, (op, s, p, o)) in mutation.ops().iter().enumerate() {
            batches[owners[index]]
                .get_or_insert_with(Mutation::new)
                .push(*op, s, p, o);
        }
    }
    batches
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::store::StoreKind;

    fn sample() -> Graph {
        let mut b = GraphBuilder::new();
        b.add("a", "p", "b");
        b.add("b", "p", "c");
        b.add("c", "q", "a");
        b.add("d", "q", "b");
        b.build()
    }

    #[test]
    fn partition_covers_disjointly_and_shares_the_dictionary() {
        let g = sample();
        for shards in [1, 2, 3, 4] {
            let parts = partition_graph(&g, shards);
            assert_eq!(parts.len(), shards);
            let mut total = 0;
            for (i, part) in parts.iter().enumerate() {
                assert!(std::ptr::eq(part.dictionary(), g.dictionary()));
                assert_eq!(part.node_count(), g.node_count());
                assert_eq!(part.predicate_count(), g.predicate_count());
                assert_eq!(part.store_kind(), g.store_kind());
                for t in part.triples() {
                    assert_eq!(shard_of(t.subject, shards), i, "subject-owned");
                    assert!(g.has_triple(t.subject, t.predicate, t.object));
                    total += 1;
                }
            }
            assert_eq!(total, g.triple_count(), "shards cover every triple once");
        }
    }

    #[test]
    fn partition_keeps_the_backend_and_threshold() {
        let g = sample()
            .with_store(StoreKind::Delta)
            .with_compaction_threshold(0.5);
        let parts = partition_graph(&g, 2);
        for part in &parts {
            assert_eq!(part.store_kind(), StoreKind::Delta);
            assert!((part.compaction_threshold() - 0.5).abs() < f64::EPSILON);
        }
    }

    #[test]
    fn known_label_batches_route_to_owners_only() {
        let g = sample();
        let m = Mutation::new().insert("a", "p", "c").remove("b", "p", "c");
        let routed = route_mutation(g.dictionary(), &m, 2);
        let a = g.dictionary().node_id("a").unwrap();
        let b = g.dictionary().node_id("b").unwrap();
        // Each op lands only on its subject's owner; an unused shard gets None.
        let mut seen = 0;
        for (shard, batch) in routed.iter().enumerate() {
            if let Some(batch) = batch {
                for (_, s, _, _) in batch.ops() {
                    let id = g.dictionary().node_id(s).unwrap();
                    assert_eq!(shard_of(id, 2), shard);
                    seen += 1;
                }
            }
        }
        assert_eq!(seen, 2);
        if shard_of(a, 2) == shard_of(b, 2) {
            assert!(routed.iter().filter(|b| b.is_some()).count() == 1);
        } else {
            assert!(routed.iter().all(Option::is_some));
        }
    }

    #[test]
    fn new_label_batches_broadcast_and_align_dictionaries() {
        let g = sample();
        let shards = 3;
        let parts = partition_graph(&g, shards);
        let m = Mutation::new()
            .insert("zed", "p", "a") // new subject: interned first
            .insert("a", "r", "ys") // new predicate and object
            .remove("b", "p", "c");
        let routed = route_mutation(g.dictionary(), &m, shards);
        assert!(routed.iter().all(Option::is_some), "interning broadcasts");

        let (unsharded, reference) = g.apply(&m);
        let mut applied = Vec::new();
        let mut inserted = 0;
        let mut removed = 0;
        for (part, batch) in parts.iter().zip(&routed) {
            let (next, outcome) = part.apply(batch.as_ref().unwrap());
            inserted += outcome.inserted;
            removed += outcome.removed;
            applied.push(next);
        }
        assert_eq!(inserted, reference.inserted);
        assert_eq!(removed, reference.removed);
        for next in &applied {
            // Bit-identical label space: same counts, same ids.
            assert_eq!(next.node_count(), unsharded.node_count());
            assert_eq!(next.predicate_count(), unsharded.predicate_count());
            for label in ["zed", "ys", "a", "b"] {
                assert_eq!(
                    next.dictionary().node_id(label),
                    unsharded.dictionary().node_id(label),
                    "{label}"
                );
            }
            assert_eq!(
                next.dictionary().predicate_id("r"),
                unsharded.dictionary().predicate_id("r")
            );
        }
        // Every post-batch triple lives on exactly its owner.
        let mut total = 0;
        for (i, next) in applied.iter().enumerate() {
            for t in next.triples() {
                assert_eq!(shard_of(t.subject, shards), i);
                assert!(unsharded.has_triple(t.subject, t.predicate, t.object));
                total += 1;
            }
        }
        assert_eq!(total, unsharded.triple_count());
    }
}

//! The edge-map storage backend: hash-map adjacency per predicate.
//!
//! The *unarranged* layout the workspace grew up with (and the one the
//! answer graph's own `PatternEdges` still uses): one
//! `HashMap<NodeId, Vec<NodeId>>` per direction per predicate, neighbor
//! vectors in edge-arrival order. Every lookup hashes the node and chases a
//! pointer to a separately allocated vector; membership probes scan;
//! full-predicate enumerations have to walk the map and materialize. It is
//! the measured point of comparison for [`CsrStore`](crate::csr::CsrStore) —
//! whose sorted, contiguous arrays turn those same operations into slices,
//! binary searches, and galloping intersections — see the `store_build`
//! bench and the CI perf gate, which run both.
//!
//! Because the neighbor vectors are unsorted, this backend reports
//! [`neighbors_sorted`](crate::store::GraphStore::neighbors_sorted) as
//! `false` and the evaluators fall back to their probe-per-neighbor paths;
//! answers are identical either way (asserted by the store-equivalence
//! property tests).

use std::borrow::Cow;
use std::collections::{HashMap, HashSet};

use crate::ids::{NodeId, PredId};
use crate::store::{GraphStore, StoreKind};

/// One predicate's edges as forward/backward hash maps.
#[derive(Debug, Clone, Default)]
struct PredMap {
    forward: HashMap<NodeId, Vec<NodeId>>,
    backward: HashMap<NodeId, Vec<NodeId>>,
    len: usize,
    max_out_degree: usize,
    max_in_degree: usize,
}

impl PredMap {
    fn build(pairs: Vec<(NodeId, NodeId)>) -> Self {
        let mut seen: HashSet<(NodeId, NodeId)> = HashSet::with_capacity(pairs.len());
        let mut forward: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        let mut backward: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        // Deduplicate while preserving arrival order: an edge map has no
        // reason to sort, so neighbor vectors stay as loaded.
        for (s, o) in pairs {
            if !seen.insert((s, o)) {
                continue;
            }
            forward.entry(s).or_default().push(o);
            backward.entry(o).or_default().push(s);
        }
        let len = seen.len();
        let max_out_degree = forward.values().map(Vec::len).max().unwrap_or(0);
        let max_in_degree = backward.values().map(Vec::len).max().unwrap_or(0);
        PredMap {
            forward,
            backward,
            len,
            max_out_degree,
            max_in_degree,
        }
    }
}

/// The hash-map storage backend. Selectable with `--store map`; exists as
/// the unarranged baseline layout against which the CSR store's compact
/// sorted adjacency is measured.
#[derive(Debug, Clone, Default)]
pub struct MapStore {
    predicates: Vec<PredMap>,
    num_triples: usize,
}

impl MapStore {
    /// Builds the store from per-predicate raw (possibly duplicated) edge
    /// lists. (`num_nodes` is irrelevant to the map layout but kept so both
    /// backends build from identical inputs.)
    pub fn build(_num_nodes: usize, edges_by_predicate: Vec<Vec<(NodeId, NodeId)>>) -> Self {
        let predicates: Vec<PredMap> = edges_by_predicate.into_iter().map(PredMap::build).collect();
        let num_triples = predicates.iter().map(|p| p.len).sum();
        MapStore {
            predicates,
            num_triples,
        }
    }

    #[inline]
    fn pred(&self, p: PredId) -> &PredMap {
        &self.predicates[p.index()]
    }
}

impl GraphStore for MapStore {
    fn kind(&self) -> StoreKind {
        StoreKind::Map
    }

    fn num_predicates(&self) -> usize {
        self.predicates.len()
    }

    fn triple_count(&self) -> usize {
        self.num_triples
    }

    #[inline]
    fn cardinality(&self, p: PredId) -> usize {
        self.pred(p).len
    }

    fn pairs(&self, p: PredId) -> Cow<'_, [(NodeId, NodeId)]> {
        // No pair array to borrow: walk the forward map and materialize.
        let pred = self.pred(p);
        let mut out = Vec::with_capacity(pred.len);
        for (&s, objects) in &pred.forward {
            out.extend(objects.iter().map(|&o| (s, o)));
        }
        Cow::Owned(out)
    }

    fn neighbors_sorted(&self) -> bool {
        false
    }

    #[inline]
    fn objects_of(&self, p: PredId, s: NodeId) -> &[NodeId] {
        self.pred(p)
            .forward
            .get(&s)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    #[inline]
    fn subjects_of(&self, p: PredId, o: NodeId) -> &[NodeId] {
        self.pred(p)
            .backward
            .get(&o)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    #[inline]
    fn has_triple(&self, s: NodeId, p: PredId, o: NodeId) -> bool {
        self.objects_of(p, s).contains(&o)
    }

    fn distinct_subjects(&self, p: PredId) -> usize {
        self.pred(p).forward.len()
    }

    fn distinct_objects(&self, p: PredId) -> usize {
        self.pred(p).backward.len()
    }

    fn max_out_degree(&self, p: PredId) -> usize {
        self.pred(p).max_out_degree
    }

    fn max_in_degree(&self, p: PredId) -> usize {
        self.pred(p).max_in_degree
    }

    fn heap_bytes(&self) -> usize {
        fn map_bytes(m: &HashMap<NodeId, Vec<NodeId>>) -> usize {
            // Bucket array (key + value + control byte, approximated) plus
            // every neighbor vector's own allocation.
            m.capacity() * (std::mem::size_of::<(NodeId, Vec<NodeId>)>() + 1)
                + m.values()
                    .map(|v| v.capacity() * std::mem::size_of::<NodeId>())
                    .sum::<usize>()
        }
        self.predicates
            .iter()
            .map(|pred| map_bytes(&pred.forward) + map_bytes(&pred.backward))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn sample() -> MapStore {
        MapStore::build(
            5,
            vec![
                vec![
                    (n(0), n(2)),
                    (n(0), n(1)),
                    (n(1), n(2)),
                    (n(3), n(2)),
                    (n(0), n(1)),
                ],
                vec![],
            ],
        )
    }

    #[test]
    fn lookups_match_the_csr_semantics_as_sets() {
        let s = sample();
        let p = PredId(0);
        assert_eq!(s.cardinality(p), 4);
        assert!(!s.neighbors_sorted());
        // Arrival order is preserved, not sorted.
        assert_eq!(s.objects_of(p, n(0)), &[n(2), n(1)]);
        let mut subjects = s.subjects_of(p, n(2)).to_vec();
        subjects.sort_unstable();
        assert_eq!(subjects, vec![n(0), n(1), n(3)]);
        assert_eq!(s.objects_of(p, n(100)), &[] as &[NodeId]);
        assert!(s.has_triple(n(3), p, n(2)));
        assert!(!s.has_triple(n(2), p, n(3)));
        assert_eq!(s.distinct_subjects(p), 3);
        assert_eq!(s.distinct_objects(p), 2);
        assert_eq!(s.max_out_degree(p), 2);
        assert_eq!(s.max_in_degree(p), 3);
        assert_eq!(s.kind(), StoreKind::Map);
    }

    #[test]
    fn pairs_are_assembled_per_scan() {
        let s = sample();
        let mut pairs = s.pairs(PredId(0)).into_owned();
        pairs.sort_unstable();
        assert_eq!(
            pairs,
            vec![(n(0), n(1)), (n(0), n(2)), (n(1), n(2)), (n(3), n(2))]
        );
        assert!(matches!(s.pairs(PredId(0)), Cow::Owned(_)));
    }

    #[test]
    fn empty_predicate() {
        let s = sample();
        let q = PredId(1);
        assert_eq!(s.cardinality(q), 0);
        assert!(s.pairs(q).is_empty());
        assert_eq!(s.distinct_subjects(q), 0);
        assert!(s.heap_bytes() > 0);
    }
}

//! # wireframe-graph — in-memory RDF graph substrate
//!
//! The storage layer underneath the Wireframe answer-graph engine: a
//! dictionary-encoded, edge-labeled, directed multigraph with per-predicate
//! forward/backward adjacency indexes and a statistics catalog.
//!
//! The paper's prototype stores its data as a PostgreSQL triple table with six
//! composite indexes over (subject, predicate, object) permutations plus a
//! string dictionary. This crate provides the equivalent *access paths* as an
//! embeddable in-memory store:
//!
//! * [`Dictionary`] — string ↔ dense-identifier mapping for nodes and predicates,
//! * [`Graph::objects_of`] / [`Graph::subjects_of`] — the `(s, p, ?)` / `(?, p, o)`
//!   index lookups,
//! * [`Graph::pairs`] — the `(?, p, ?)` scan,
//! * [`Graph::has_triple`] — the `(s, p, o)` membership probe,
//! * [`Catalog`] — 1-gram and 2-gram edge-label statistics for the cost-based
//!   planners.
//!
//! The physical layout behind those access paths is a pluggable **storage
//! backend**: the [`GraphStore`] trait abstracts the per-predicate indexes,
//! and a [`StoreKind`] selects the implementation when the graph is built —
//! [`CsrStore`] (sorted contiguous adjacency, the default), [`MapStore`]
//! (hash-map adjacency, the comparison baseline), or [`DeltaStore`] (an
//! immutable CSR base under a sorted insert/tombstone overlay, for dynamic
//! graphs). The CSR and delta backends hand out **sorted** neighbor slices,
//! which the [`slices`] module turns into binary-search membership probes
//! and galloping intersections for the evaluators' hot paths.
//!
//! Graph values are immutable, so all query engines read them without
//! synchronization; updates produce *new versions* instead —
//! [`Graph::apply`] applies a [`Mutation`] batch and, on the delta backend,
//! shares the unchanged base with the predecessor version and compacts when
//! the overlay outgrows a configurable fraction of it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod csr;
mod delta;
mod dictionary;
mod error;
mod histogram;
mod ids;
mod map;
mod mutation;
mod ntriples;
mod partition;
pub mod slices;
mod stats;
mod store;

pub use builder::GraphBuilder;
pub use csr::CsrStore;
pub use delta::DeltaStore;
pub use dictionary::Dictionary;
pub use error::GraphError;
pub use histogram::DegreeHistogram;
pub use ids::{NodeId, PredId, Triple};
pub use map::MapStore;
pub use mutation::{EdgeDelta, Mutation, MutationOp, MutationOutcome};
pub use ntriples::{load, load_into, parse_line, write};
pub use partition::{partition_graph, route_mutation, shard_of};
pub use stats::{BigramStats, Catalog, End, UnigramStats};
pub use store::{Graph, GraphStore, StoreKind, DEFAULT_COMPACTION_THRESHOLD};

//! Per-predicate adjacency indexes.
//!
//! The answer-graph evaluator's unit of work is the *edge walk*: retrieving
//! the data edges with a given label that are incident to a given node, or
//! scanning all edges with a given label. A [`PredicateIndex`] provides both
//! directions as CSR (compressed sparse row) adjacency over the dense node
//! identifiers, plus a sorted pair list for full scans and membership tests.
//! Together the per-predicate indexes play the role of the six composite
//! subject/predicate/object indexes the paper builds in PostgreSQL.

use crate::ids::NodeId;

/// Adjacency in one direction for a single predicate, stored as CSR over the
/// graph's dense node-identifier space.
#[derive(Debug, Clone, Default)]
struct Csr {
    /// `offsets[v]..offsets[v+1]` indexes into `targets` for source node `v`.
    offsets: Vec<u32>,
    /// Neighbor lists, sorted within each source node's range.
    targets: Vec<NodeId>,
}

impl Csr {
    fn build(num_nodes: usize, mut pairs: Vec<(NodeId, NodeId)>) -> Self {
        pairs.sort_unstable();
        pairs.dedup();
        let mut offsets = vec![0u32; num_nodes + 1];
        for &(src, _) in &pairs {
            offsets[src.index() + 1] += 1;
        }
        for i in 0..num_nodes {
            offsets[i + 1] += offsets[i];
        }
        let targets = pairs.into_iter().map(|(_, dst)| dst).collect();
        Csr { offsets, targets }
    }

    #[inline]
    fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let i = v.index();
        if i + 1 >= self.offsets.len() {
            return &[];
        }
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        &self.targets[lo..hi]
    }

    #[inline]
    fn degree(&self, v: NodeId) -> usize {
        self.neighbors(v).len()
    }
}

/// All edges carrying one predicate label, indexed in both directions.
#[derive(Debug, Clone, Default)]
pub struct PredicateIndex {
    /// Distinct `(subject, object)` pairs, sorted by `(subject, object)`.
    pairs: Vec<(NodeId, NodeId)>,
    forward: Csr,
    backward: Csr,
    distinct_subjects: usize,
    distinct_objects: usize,
}

impl PredicateIndex {
    /// Builds the index for one predicate from its raw (possibly duplicated)
    /// edge list. `num_nodes` is the size of the graph's node-identifier space.
    pub fn build(num_nodes: usize, mut pairs: Vec<(NodeId, NodeId)>) -> Self {
        pairs.sort_unstable();
        pairs.dedup();
        let reversed: Vec<(NodeId, NodeId)> = pairs.iter().map(|&(s, o)| (o, s)).collect();
        let forward = Csr::build(num_nodes, pairs.clone());
        let backward = Csr::build(num_nodes, reversed);
        let distinct_subjects = count_distinct_sorted(pairs.iter().map(|&(s, _)| s));
        let mut objects: Vec<NodeId> = pairs.iter().map(|&(_, o)| o).collect();
        objects.sort_unstable();
        let distinct_objects = count_distinct_sorted(objects.into_iter());
        PredicateIndex {
            pairs,
            forward,
            backward,
            distinct_subjects,
            distinct_objects,
        }
    }

    /// All distinct `(subject, object)` pairs with this predicate, sorted.
    #[inline]
    pub fn pairs(&self) -> &[(NodeId, NodeId)] {
        &self.pairs
    }

    /// Number of distinct edges with this predicate.
    #[inline]
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether this predicate has no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Objects reachable from `subject` over this predicate (sorted).
    #[inline]
    pub fn objects_of(&self, subject: NodeId) -> &[NodeId] {
        self.forward.neighbors(subject)
    }

    /// Subjects reaching `object` over this predicate (sorted).
    #[inline]
    pub fn subjects_of(&self, object: NodeId) -> &[NodeId] {
        self.backward.neighbors(object)
    }

    /// Out-degree of `subject` under this predicate.
    #[inline]
    pub fn out_degree(&self, subject: NodeId) -> usize {
        self.forward.degree(subject)
    }

    /// In-degree of `object` under this predicate.
    #[inline]
    pub fn in_degree(&self, object: NodeId) -> usize {
        self.backward.degree(object)
    }

    /// Membership test for a specific edge.
    #[inline]
    pub fn has_edge(&self, subject: NodeId, object: NodeId) -> bool {
        self.forward
            .neighbors(subject)
            .binary_search(&object)
            .is_ok()
    }

    /// Number of distinct subjects appearing in this predicate's edges.
    #[inline]
    pub fn distinct_subjects(&self) -> usize {
        self.distinct_subjects
    }

    /// Number of distinct objects appearing in this predicate's edges.
    #[inline]
    pub fn distinct_objects(&self) -> usize {
        self.distinct_objects
    }
}

fn count_distinct_sorted<I: Iterator<Item = NodeId>>(iter: I) -> usize {
    let mut count = 0;
    let mut prev: Option<NodeId> = None;
    for v in iter {
        if prev != Some(v) {
            count += 1;
            prev = Some(v);
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    fn sample() -> PredicateIndex {
        // edges: 0->1, 0->2, 1->2, 3->2, plus a duplicate of 0->1
        PredicateIndex::build(
            5,
            vec![
                (n(0), n(1)),
                (n(0), n(2)),
                (n(1), n(2)),
                (n(3), n(2)),
                (n(0), n(1)),
            ],
        )
    }

    #[test]
    fn duplicates_are_removed() {
        let idx = sample();
        assert_eq!(idx.len(), 4);
    }

    #[test]
    fn forward_and_backward_adjacency() {
        let idx = sample();
        assert_eq!(idx.objects_of(n(0)), &[n(1), n(2)]);
        assert_eq!(idx.objects_of(n(1)), &[n(2)]);
        assert_eq!(idx.objects_of(n(2)), &[] as &[NodeId]);
        assert_eq!(idx.subjects_of(n(2)), &[n(0), n(1), n(3)]);
        assert_eq!(idx.subjects_of(n(1)), &[n(0)]);
    }

    #[test]
    fn degrees() {
        let idx = sample();
        assert_eq!(idx.out_degree(n(0)), 2);
        assert_eq!(idx.in_degree(n(2)), 3);
        assert_eq!(idx.out_degree(n(4)), 0);
    }

    #[test]
    fn membership() {
        let idx = sample();
        assert!(idx.has_edge(n(0), n(1)));
        assert!(idx.has_edge(n(3), n(2)));
        assert!(!idx.has_edge(n(1), n(0)));
        assert!(!idx.has_edge(n(4), n(4)));
    }

    #[test]
    fn distinct_counts() {
        let idx = sample();
        assert_eq!(idx.distinct_subjects(), 3); // 0, 1, 3
        assert_eq!(idx.distinct_objects(), 2); // 1, 2
    }

    #[test]
    fn out_of_range_node_is_empty() {
        let idx = sample();
        assert_eq!(idx.objects_of(n(100)), &[] as &[NodeId]);
        assert_eq!(idx.subjects_of(n(100)), &[] as &[NodeId]);
    }

    #[test]
    fn empty_index() {
        let idx = PredicateIndex::build(3, vec![]);
        assert!(idx.is_empty());
        assert_eq!(idx.pairs(), &[]);
        assert_eq!(idx.distinct_subjects(), 0);
        assert_eq!(idx.distinct_objects(), 0);
    }
}

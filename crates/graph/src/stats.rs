//! The statistics catalog: 1-gram and 2-gram edge-label statistics.
//!
//! Wireframe's planners estimate the number of *edge walks* a candidate plan
//! performs. The estimates are driven by a catalog of per-predicate (1-gram)
//! statistics and per-predicate-pair (2-gram) join statistics, exactly the
//! statistics the paper says are "computed offline" for its cost model.
//!
//! * 1-gram: per predicate `p` — edge count, number of distinct subjects and
//!   objects, and the resulting average fan-out/fan-in.
//! * 2-gram: for a pair of predicates `(p, q)` joined on a choice of end
//!   (subject or object of each) — the exact number of joining node values and
//!   the exact cardinality of the pairwise join. These are computed lazily the
//!   first time a (p, q, ends) combination is requested and memoized, which
//!   keeps load time proportional to the data rather than to the square of the
//!   predicate vocabulary.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use crate::ids::{NodeId, PredId};
use crate::store::GraphStore;

/// Which end of a triple pattern participates in a join.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum End {
    /// The subject (source) end.
    Subject,
    /// The object (target) end.
    Object,
}

/// Per-predicate statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UnigramStats {
    /// Number of distinct edges with this predicate.
    pub cardinality: usize,
    /// Number of distinct subject nodes.
    pub distinct_subjects: usize,
    /// Number of distinct object nodes.
    pub distinct_objects: usize,
    /// Largest out-degree of any subject (0 for an empty predicate). Degree
    /// statistics fall out of the store build and let the planners bound
    /// skewed predicates by real rather than average fan-out.
    pub max_out_degree: usize,
    /// Largest in-degree of any object (0 for an empty predicate).
    pub max_in_degree: usize,
}

impl UnigramStats {
    /// Average number of objects per subject (fan-out). Zero for an empty predicate.
    pub fn avg_fanout(&self) -> f64 {
        if self.distinct_subjects == 0 {
            0.0
        } else {
            self.cardinality as f64 / self.distinct_subjects as f64
        }
    }

    /// Average number of subjects per object (fan-in). Zero for an empty predicate.
    pub fn avg_fanin(&self) -> f64 {
        if self.distinct_objects == 0 {
            0.0
        } else {
            self.cardinality as f64 / self.distinct_objects as f64
        }
    }

    /// Number of distinct nodes on the given end.
    pub fn distinct(&self, end: End) -> usize {
        match end {
            End::Subject => self.distinct_subjects,
            End::Object => self.distinct_objects,
        }
    }

    /// Average number of edges per distinct node on the given end.
    pub fn avg_degree(&self, end: End) -> f64 {
        match end {
            End::Subject => self.avg_fanout(),
            End::Object => self.avg_fanin(),
        }
    }

    /// Largest degree of any node on the given end.
    pub fn max_degree(&self, end: End) -> usize {
        match end {
            End::Subject => self.max_out_degree,
            End::Object => self.max_in_degree,
        }
    }
}

/// Join statistics for a pair of predicates joined on a choice of ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BigramStats {
    /// Number of distinct node values that appear on both join ends.
    pub joining_values: usize,
    /// Exact cardinality of the pairwise join
    /// `{(e1, e2) | e1 ∈ p, e2 ∈ q, e1.end_p = e2.end_q}`.
    pub join_cardinality: u64,
}

/// Sorted `(node, degree)` list for one end of one predicate.
#[derive(Debug, Clone, Default)]
struct DegreeList {
    entries: Vec<(NodeId, u32)>,
}

impl DegreeList {
    fn from_sorted_nodes<I: Iterator<Item = NodeId>>(sorted: I) -> Self {
        let mut entries: Vec<(NodeId, u32)> = Vec::new();
        for v in sorted {
            match entries.last_mut() {
                Some((last, c)) if *last == v => *c += 1,
                _ => entries.push((v, 1)),
            }
        }
        DegreeList { entries }
    }
}

/// The statistics catalog attached to a [`Graph`](crate::store::Graph).
#[derive(Debug)]
pub struct Catalog {
    unigrams: Vec<UnigramStats>,
    /// Per predicate: sorted distinct subjects with out-degree. `Arc`-shared
    /// so [`Catalog::refreshed`] copies pointers, not degree entries, for
    /// untouched predicates.
    subject_degrees: Vec<Arc<DegreeList>>,
    /// Per predicate: sorted distinct objects with in-degree (shared
    /// likewise).
    object_degrees: Vec<Arc<DegreeList>>,
    /// Total number of nodes in the graph (for fallback selectivities).
    num_nodes: usize,
    /// Memoized 2-gram statistics.
    bigram_cache: RwLock<HashMap<(PredId, End, PredId, End), BigramStats>>,
}

impl Clone for Catalog {
    fn clone(&self) -> Self {
        Catalog {
            unigrams: self.unigrams.clone(),
            subject_degrees: self.subject_degrees.clone(),
            object_degrees: self.object_degrees.clone(),
            num_nodes: self.num_nodes,
            bigram_cache: RwLock::new(
                self.bigram_cache
                    .read()
                    .expect("catalog cache poisoned")
                    .clone(),
            ),
        }
    }
}

impl Catalog {
    /// Computes the 1-gram statistics (and the degree lists that back lazy
    /// 2-gram computation) from a storage backend. Statistics are derived
    /// from the backend-independent [`GraphStore::pairs`] view, so every
    /// backend yields the identical catalog.
    pub fn compute(store: &dyn GraphStore, num_nodes: usize) -> Self {
        let count = store.num_predicates();
        let mut unigrams = Vec::with_capacity(count);
        let mut subject_degrees = Vec::with_capacity(count);
        let mut object_degrees = Vec::with_capacity(count);
        for p in 0..count {
            let p = PredId(p as u32);
            unigrams.push(UnigramStats {
                cardinality: store.cardinality(p),
                distinct_subjects: store.distinct_subjects(p),
                distinct_objects: store.distinct_objects(p),
                max_out_degree: store.max_out_degree(p),
                max_in_degree: store.max_in_degree(p),
            });
            // Pair order is backend-dependent; sort both ends locally so the
            // catalog is bit-identical across storage backends.
            let pairs = store.pairs(p);
            let mut subjects: Vec<NodeId> = pairs.iter().map(|&(s, _)| s).collect();
            subjects.sort_unstable();
            subject_degrees.push(Arc::new(DegreeList::from_sorted_nodes(
                subjects.into_iter(),
            )));
            let mut objects: Vec<NodeId> = pairs.iter().map(|&(_, o)| o).collect();
            objects.sort_unstable();
            object_degrees.push(Arc::new(DegreeList::from_sorted_nodes(objects.into_iter())));
        }
        Catalog {
            unigrams,
            subject_degrees,
            object_degrees,
            num_nodes,
            bigram_cache: RwLock::new(HashMap::new()),
        }
    }

    /// Recomputes the catalog entries of `touched` predicates against a
    /// (mutated) store, carrying every other predicate's entry over
    /// unchanged and dropping memoized 2-gram statistics that involve a
    /// touched predicate. Predicates interned after this catalog was
    /// computed must be listed in `touched`.
    ///
    /// Because untouched predicates' edges are untouched by definition, the
    /// result is identical to a full [`Catalog::compute`] — at
    /// `O(touched predicate sizes)` instead of `O(|graph|)`, which is what
    /// keeps [`Graph::apply`](crate::store::Graph::apply) cheap on the delta
    /// backend.
    pub fn refreshed(&self, store: &dyn GraphStore, touched: &[PredId], num_nodes: usize) -> Self {
        let count = store.num_predicates();
        let mut unigrams = self.unigrams.clone();
        let mut subject_degrees = self.subject_degrees.clone();
        let mut object_degrees = self.object_degrees.clone();
        unigrams.resize(count, UnigramStats::default());
        subject_degrees.resize(count, Arc::new(DegreeList::default()));
        object_degrees.resize(count, Arc::new(DegreeList::default()));
        for &p in touched {
            unigrams[p.index()] = UnigramStats {
                cardinality: store.cardinality(p),
                distinct_subjects: store.distinct_subjects(p),
                distinct_objects: store.distinct_objects(p),
                max_out_degree: store.max_out_degree(p),
                max_in_degree: store.max_in_degree(p),
            };
            let pairs = store.pairs(p);
            let mut subjects: Vec<NodeId> = pairs.iter().map(|&(s, _)| s).collect();
            subjects.sort_unstable();
            subject_degrees[p.index()] =
                Arc::new(DegreeList::from_sorted_nodes(subjects.into_iter()));
            let mut objects: Vec<NodeId> = pairs.iter().map(|&(_, o)| o).collect();
            objects.sort_unstable();
            object_degrees[p.index()] =
                Arc::new(DegreeList::from_sorted_nodes(objects.into_iter()));
        }
        let bigram_cache: HashMap<_, _> = self
            .bigram_cache
            .read()
            .expect("catalog cache poisoned")
            .iter()
            .filter(|((p, _, q, _), _)| !touched.contains(p) && !touched.contains(q))
            .map(|(k, v)| (*k, *v))
            .collect();
        Catalog {
            unigrams,
            subject_degrees,
            object_degrees,
            num_nodes,
            bigram_cache: RwLock::new(bigram_cache),
        }
    }

    /// Number of nodes in the underlying graph.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of predicates covered by the catalog.
    pub fn num_predicates(&self) -> usize {
        self.unigrams.len()
    }

    /// 1-gram statistics for predicate `p`.
    pub fn unigram(&self, p: PredId) -> UnigramStats {
        self.unigrams[p.index()]
    }

    /// 2-gram statistics for predicates `p` and `q` joined on the given ends.
    /// Computed exactly on first use and memoized.
    pub fn bigram(&self, p: PredId, p_end: End, q: PredId, q_end: End) -> BigramStats {
        let key = (p, p_end, q, q_end);
        if let Some(hit) = self
            .bigram_cache
            .read()
            .expect("catalog cache poisoned")
            .get(&key)
        {
            return *hit;
        }
        let stats = self.compute_bigram(p, p_end, q, q_end);
        self.bigram_cache
            .write()
            .expect("catalog cache poisoned")
            .insert(key, stats);
        // The symmetric entry is the same statistic; cache it too.
        self.bigram_cache
            .write()
            .expect("catalog cache poisoned")
            .insert((q, q_end, p, p_end), stats);
        stats
    }

    fn degree_list(&self, p: PredId, end: End) -> &DegreeList {
        match end {
            End::Subject => &self.subject_degrees[p.index()],
            End::Object => &self.object_degrees[p.index()],
        }
    }

    fn compute_bigram(&self, p: PredId, p_end: End, q: PredId, q_end: End) -> BigramStats {
        let a = &self.degree_list(p, p_end).entries;
        let b = &self.degree_list(q, q_end).entries;
        let mut i = 0;
        let mut j = 0;
        let mut joining_values = 0usize;
        let mut join_cardinality = 0u64;
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    joining_values += 1;
                    join_cardinality += a[i].1 as u64 * b[j].1 as u64;
                    i += 1;
                    j += 1;
                }
            }
        }
        BigramStats {
            joining_values,
            join_cardinality,
        }
    }

    /// Estimated selectivity of restricting predicate `p` on end `end` to a
    /// single node value: `1 / distinct(end)`, with a fallback of
    /// `1 / num_nodes` when the predicate is empty.
    pub fn end_selectivity(&self, p: PredId, end: End) -> f64 {
        let distinct = self.unigram(p).distinct(end);
        if distinct > 0 {
            1.0 / distinct as f64
        } else if self.num_nodes > 0 {
            1.0 / self.num_nodes as f64
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    /// A: 1->5, 2->5, 3->5 (fan-in 3); B: 5->9; C: 9->12, 9->13 (fan-out 2).
    fn sample() -> crate::store::Graph {
        let mut b = GraphBuilder::new();
        for s in ["1", "2", "3"] {
            b.add(s, "A", "5");
        }
        b.add("5", "B", "9");
        b.add("9", "C", "12");
        b.add("9", "C", "13");
        b.build()
    }

    #[test]
    fn unigram_counts() {
        let g = sample();
        let a = g.dictionary().predicate_id("A").unwrap();
        let c = g.dictionary().predicate_id("C").unwrap();
        let ua = g.catalog().unigram(a);
        assert_eq!(ua.cardinality, 3);
        assert_eq!(ua.distinct_subjects, 3);
        assert_eq!(ua.distinct_objects, 1);
        assert!((ua.avg_fanin() - 3.0).abs() < 1e-9);
        assert_eq!(ua.max_in_degree, 3, "all three A edges hit node 5");
        assert_eq!(ua.max_out_degree, 1);
        assert_eq!(ua.max_degree(End::Object), 3);
        let uc = g.catalog().unigram(c);
        assert!((uc.avg_fanout() - 2.0).abs() < 1e-9);
        assert_eq!(uc.max_out_degree, 2);
    }

    #[test]
    fn bigram_object_subject_join() {
        // A.object joins B.subject only on node "5": 3 * 1 = 3 pairs.
        let g = sample();
        let a = g.dictionary().predicate_id("A").unwrap();
        let b = g.dictionary().predicate_id("B").unwrap();
        let s = g.catalog().bigram(a, End::Object, b, End::Subject);
        assert_eq!(s.joining_values, 1);
        assert_eq!(s.join_cardinality, 3);
    }

    #[test]
    fn bigram_is_symmetric_and_cached() {
        let g = sample();
        let b = g.dictionary().predicate_id("B").unwrap();
        let c = g.dictionary().predicate_id("C").unwrap();
        let s1 = g.catalog().bigram(b, End::Object, c, End::Subject);
        let s2 = g.catalog().bigram(c, End::Subject, b, End::Object);
        assert_eq!(s1, s2);
        assert_eq!(s1.join_cardinality, 2);
    }

    #[test]
    fn bigram_with_no_overlap() {
        let g = sample();
        let a = g.dictionary().predicate_id("A").unwrap();
        let c = g.dictionary().predicate_id("C").unwrap();
        // A subjects {1,2,3} vs C objects {12,13}: no overlap.
        let s = g.catalog().bigram(a, End::Subject, c, End::Object);
        assert_eq!(s.joining_values, 0);
        assert_eq!(s.join_cardinality, 0);
    }

    #[test]
    fn end_selectivity_bounds() {
        let g = sample();
        let a = g.dictionary().predicate_id("A").unwrap();
        let sel = g.catalog().end_selectivity(a, End::Object);
        assert!((sel - 1.0).abs() < 1e-9, "single distinct object");
        let sel_s = g.catalog().end_selectivity(a, End::Subject);
        assert!((sel_s - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn clone_preserves_cache() {
        let g = sample();
        let a = g.dictionary().predicate_id("A").unwrap();
        let b = g.dictionary().predicate_id("B").unwrap();
        let before = g.catalog().bigram(a, End::Object, b, End::Subject);
        let cloned = g.catalog().clone();
        assert_eq!(cloned.bigram(a, End::Object, b, End::Subject), before);
    }

    #[test]
    fn empty_catalog() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.catalog().num_predicates(), 0);
        assert_eq!(g.catalog().num_nodes(), 0);
    }

    #[test]
    fn refreshed_catalog_matches_a_full_recompute() {
        use crate::mutation::Mutation;
        let g = sample();
        let b = g.dictionary().predicate_id("B").unwrap();
        let c = g.dictionary().predicate_id("C").unwrap();
        // Warm a bigram that the mutation will invalidate (B × C) and one it
        // must keep (computed lazily again either way — equality is what
        // matters).
        let warmed = g.catalog().bigram(b, End::Object, c, End::Subject);
        assert_eq!(warmed.join_cardinality, 2);

        let (next, _) = g.apply(
            &Mutation::new()
                .insert("9", "C", "14")
                .remove("9", "C", "12"),
        );
        let fresh = Catalog::compute(next.store(), next.node_count());
        for p in 0..next.predicate_count() {
            let p = PredId(p as u32);
            assert_eq!(next.catalog().unigram(p), fresh.unigram(p), "{p}");
        }
        assert_eq!(
            next.catalog().bigram(b, End::Object, c, End::Subject),
            fresh.bigram(b, End::Object, c, End::Subject),
            "invalidated bigrams recompute against the mutated data"
        );
    }
}

//! Construction of immutable [`Graph`]s.
//!
//! The builder accepts triples either as strings (interning them on the fly)
//! or as already-encoded identifiers, then freezes them into the indexed,
//! statistics-annotated [`Graph`].

use crate::dictionary::Dictionary;
use crate::ids::{NodeId, PredId, Triple};
use crate::store::{Graph, StoreKind};

/// Accumulates triples and builds an immutable [`Graph`].
///
/// # Dedup contract
///
/// Ingestion has **set semantics**, identically on every storage backend: a
/// triple added `n` times is stored once, [`Graph::triple_count`] counts
/// distinct triples, and every access path ([`Graph::pairs`],
/// [`Graph::objects_of`], degrees, statistics) sees each distinct triple
/// exactly once. Only the pre-freeze [`GraphBuilder::pending_triples`]
/// counter observes duplicates. The same semantics extend to the dynamic
/// path: [`Graph::apply`](crate::store::Graph::apply) treats re-inserting a
/// present triple and removing an absent one as no-ops. The
/// `duplicate_ingestion_is_set_semantics_on_every_store` test pins the
/// contract across all [`StoreKind`]s.
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    dictionary: Dictionary,
    /// Raw edge lists grouped by predicate identifier.
    edges_by_predicate: Vec<Vec<(NodeId, NodeId)>>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder that reuses an existing dictionary (useful when the
    /// caller wants stable identifiers across several graphs).
    pub fn with_dictionary(dictionary: Dictionary) -> Self {
        let edges_by_predicate = vec![Vec::new(); dictionary.predicate_count()];
        GraphBuilder {
            dictionary,
            edges_by_predicate,
        }
    }

    /// Adds a triple given as strings, interning the labels.
    pub fn add(&mut self, subject: &str, predicate: &str, object: &str) -> Triple {
        let s = self.dictionary.intern_node(subject);
        let p = self.dictionary.intern_predicate(predicate);
        let o = self.dictionary.intern_node(object);
        self.add_encoded(s, p, o);
        Triple::new(s, p, o)
    }

    /// Adds an already dictionary-encoded triple. The identifiers must have
    /// been produced by this builder's dictionary.
    pub fn add_encoded(&mut self, subject: NodeId, predicate: PredId, object: NodeId) {
        if self.edges_by_predicate.len() <= predicate.index() {
            self.edges_by_predicate
                .resize(predicate.index() + 1, Vec::new());
        }
        self.edges_by_predicate[predicate.index()].push((subject, object));
    }

    /// Interns a node label without adding any edge (e.g. for isolated nodes
    /// or to pre-allocate identifiers).
    pub fn intern_node(&mut self, label: &str) -> NodeId {
        self.dictionary.intern_node(label)
    }

    /// Interns a predicate label without adding any edge.
    pub fn intern_predicate(&mut self, label: &str) -> PredId {
        self.dictionary.intern_predicate(label)
    }

    /// Read access to the dictionary being built.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dictionary
    }

    /// Number of triples added so far (duplicates included).
    pub fn pending_triples(&self) -> usize {
        self.edges_by_predicate.iter().map(Vec::len).sum()
    }

    /// Freezes the accumulated triples into an indexed [`Graph`] using the
    /// default storage backend ([`StoreKind::Csr`]).
    /// Duplicate triples are removed (see the dedup contract in the type
    /// docs); statistics are computed.
    pub fn build(self) -> Graph {
        self.build_with_store(StoreKind::default())
    }

    /// Freezes the accumulated triples into an indexed [`Graph`] using the
    /// given storage backend.
    pub fn build_with_store(mut self, kind: StoreKind) -> Graph {
        // Every interned predicate gets an index, even if it has no edges,
        // so that predicate identifiers always address a store entry safely.
        let num_predicates = self.dictionary.predicate_count();
        if self.edges_by_predicate.len() < num_predicates {
            self.edges_by_predicate.resize(num_predicates, Vec::new());
        }
        let num_nodes = self.dictionary.node_count();
        Graph::from_parts(self.dictionary, num_nodes, self.edges_by_predicate, kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.predicate_count(), 0);
        assert_eq!(g.triple_count(), 0);
    }

    #[test]
    fn add_returns_encoded_triple() {
        let mut b = GraphBuilder::new();
        let t = b.add("x", "p", "y");
        assert_eq!(t.subject, NodeId(0));
        assert_eq!(t.predicate, PredId(0));
        assert_eq!(t.object, NodeId(1));
    }

    #[test]
    fn predicate_without_edges_gets_an_index() {
        let mut b = GraphBuilder::new();
        b.intern_predicate("unused");
        b.add("x", "p", "y");
        let g = b.build();
        assert_eq!(g.predicate_count(), 2);
        let unused = g.dictionary().predicate_id("unused").unwrap();
        assert_eq!(g.predicate_cardinality(unused), 0);
    }

    #[test]
    fn encoded_and_string_insertion_agree() {
        let mut b = GraphBuilder::new();
        let s = b.intern_node("s");
        let p = b.intern_predicate("p");
        let o = b.intern_node("o");
        b.add_encoded(s, p, o);
        b.add("s", "p", "o2");
        let g = b.build();
        assert_eq!(g.triple_count(), 2);
        assert!(g.has_triple(s, p, o));
    }

    #[test]
    fn pending_triples_counts_duplicates() {
        let mut b = GraphBuilder::new();
        b.add("a", "p", "b");
        b.add("a", "p", "b");
        assert_eq!(b.pending_triples(), 2);
        let g = b.build();
        assert_eq!(g.triple_count(), 1);
    }

    #[test]
    fn duplicate_ingestion_is_set_semantics_on_every_store() {
        for kind in [StoreKind::Csr, StoreKind::Map, StoreKind::Delta] {
            let mut b = GraphBuilder::new();
            for _ in 0..3 {
                b.add("a", "p", "b");
                b.add("b", "q", "c");
            }
            b.add("a", "p", "c");
            assert_eq!(b.pending_triples(), 7, "pre-freeze count sees duplicates");
            let g = b.build_with_store(kind);
            assert_eq!(g.triple_count(), 3, "{kind:?}");
            let d = g.dictionary();
            let p = d.predicate_id("p").unwrap();
            let a = d.node_id("a").unwrap();
            assert_eq!(g.predicate_cardinality(p), 2, "{kind:?}");
            assert_eq!(g.out_degree(p, a), 2, "{kind:?}");
            assert_eq!(g.pairs(p).len(), 2, "{kind:?}");
            assert_eq!(g.catalog().unigram(p).cardinality, 2, "{kind:?}");
        }
    }

    #[test]
    fn with_dictionary_preserves_ids() {
        let mut b1 = GraphBuilder::new();
        b1.add("a", "p", "b");
        let g1 = b1.build();
        let mut b2 = GraphBuilder::with_dictionary(g1.dictionary().clone());
        b2.add("b", "p", "c");
        let g2 = b2.build();
        assert_eq!(
            g1.dictionary().node_id("b"),
            g2.dictionary().node_id("b"),
            "shared dictionary keeps identifiers stable"
        );
    }

    #[test]
    fn isolated_nodes_count() {
        let mut b = GraphBuilder::new();
        b.intern_node("lonely");
        b.add("a", "p", "b");
        let g = b.build();
        assert_eq!(g.node_count(), 3);
    }
}

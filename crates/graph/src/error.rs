//! Error type for graph loading and construction.

use std::fmt;
use std::io;

/// Errors produced while loading or building graphs.
#[derive(Debug)]
pub enum GraphError {
    /// A malformed input line or term.
    Parse(String),
    /// An underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Parse(msg) => write!(f, "parse error: {msg}"),
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            GraphError::Parse(_) => None,
        }
    }
}

impl From<io::Error> for GraphError {
    fn from(e: io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parse_error() {
        let e = GraphError::Parse("bad line".into());
        assert_eq!(e.to_string(), "parse error: bad line");
    }

    #[test]
    fn io_error_has_source() {
        use std::error::Error;
        let e = GraphError::from(io::Error::new(io::ErrorKind::NotFound, "missing"));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("missing"));
    }
}

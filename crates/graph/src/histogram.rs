//! Degree histograms: distribution statistics beyond the 1-gram averages.
//!
//! The catalog's 1-gram statistics summarize every predicate by averages
//! (fan-out, fan-in). Real edge labels are heavily skewed — exactly the
//! situation in which averages mislead a cost model. A [`DegreeHistogram`]
//! records the full degree distribution of one predicate end (min, max,
//! percentiles, a small equi-depth histogram), giving planners and dataset
//! reports a faithful picture of the skew that makes factorization pay off.

use crate::ids::PredId;
use crate::stats::End;
use crate::store::Graph;

/// Summary of the distribution of node degrees on one end of one predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeHistogram {
    /// Which end of the predicate the degrees describe.
    pub end: End,
    /// Number of distinct nodes with at least one edge on this end.
    pub distinct_nodes: usize,
    /// Total number of edges.
    pub total_edges: usize,
    /// Smallest degree (0 when the predicate is empty).
    pub min: usize,
    /// Largest degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Median degree.
    pub median: usize,
    /// 90th percentile degree.
    pub p90: usize,
    /// 99th percentile degree.
    pub p99: usize,
    /// Equi-depth bucket boundaries (ascending degree values), at most
    /// [`DegreeHistogram::BUCKETS`] of them.
    pub bucket_bounds: Vec<usize>,
}

impl DegreeHistogram {
    /// Number of equi-depth buckets kept.
    pub const BUCKETS: usize = 8;

    /// Builds the histogram for one end of one predicate of a graph
    /// (backend-independent: derived from the store's sorted pair list).
    pub fn build(graph: &Graph, p: PredId, end: End) -> Self {
        let pairs = graph.pairs(p);
        let mut degrees: Vec<usize> = match end {
            End::Subject => pairs.iter().map(|&(s, _)| s).collect::<Vec<_>>(),
            End::Object => pairs.iter().map(|&(_, o)| o).collect::<Vec<_>>(),
        }
        .chunk_degrees();

        degrees.sort_unstable();
        let distinct_nodes = degrees.len();
        let total_edges = pairs.len();
        if degrees.is_empty() {
            return DegreeHistogram {
                end,
                distinct_nodes: 0,
                total_edges: 0,
                min: 0,
                max: 0,
                mean: 0.0,
                median: 0,
                p90: 0,
                p99: 0,
                bucket_bounds: Vec::new(),
            };
        }
        let percentile = |p: f64| -> usize {
            let idx = ((degrees.len() as f64 - 1.0) * p).round() as usize;
            degrees[idx.min(degrees.len() - 1)]
        };
        let bucket_bounds = (1..=Self::BUCKETS)
            .map(|i| percentile(i as f64 / Self::BUCKETS as f64))
            .collect();
        DegreeHistogram {
            end,
            distinct_nodes,
            total_edges,
            min: degrees[0],
            max: *degrees.last().expect("non-empty"),
            mean: total_edges as f64 / distinct_nodes as f64,
            median: percentile(0.5),
            p90: percentile(0.9),
            p99: percentile(0.99),
            bucket_bounds,
        }
    }

    /// A simple skew indicator: `max / mean` (1.0 for perfectly uniform degrees).
    pub fn skew(&self) -> f64 {
        if self.mean > 0.0 {
            self.max as f64 / self.mean
        } else {
            0.0
        }
    }
}

/// Helper: turn a multiset of node identifiers into the list of per-node counts.
trait ChunkDegrees {
    fn chunk_degrees(self) -> Vec<usize>;
}

impl ChunkDegrees for Vec<crate::ids::NodeId> {
    fn chunk_degrees(mut self) -> Vec<usize> {
        self.sort_unstable();
        let mut out = Vec::new();
        let mut run = 0usize;
        let mut prev: Option<crate::ids::NodeId> = None;
        for v in self {
            if prev == Some(v) {
                run += 1;
            } else {
                if run > 0 {
                    out.push(run);
                }
                run = 1;
                prev = Some(v);
            }
        }
        if run > 0 {
            out.push(run);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn hub_index() -> crate::store::Graph {
        let mut b = GraphBuilder::new();
        // hub receives 10 edges; nine other objects receive one each.
        for i in 0..10 {
            b.add(&format!("s{i}"), "P", "hub");
        }
        for i in 0..9 {
            b.add(&format!("t{i}"), "P", &format!("o{i}"));
        }
        b.build()
    }

    #[test]
    fn object_histogram_captures_the_hub() {
        let g = hub_index();
        let p = g.dictionary().predicate_id("P").unwrap();
        let h = DegreeHistogram::build(&g, p, End::Object);
        assert_eq!(h.distinct_nodes, 10);
        assert_eq!(h.total_edges, 19);
        assert_eq!(h.max, 10);
        assert_eq!(h.min, 1);
        assert_eq!(h.median, 1);
        assert!(h.p99 >= h.p90);
        assert!(h.skew() > 3.0, "the hub makes the distribution skewed");
        assert_eq!(h.bucket_bounds.len(), DegreeHistogram::BUCKETS);
    }

    #[test]
    fn subject_histogram_is_uniform_here() {
        let g = hub_index();
        let p = g.dictionary().predicate_id("P").unwrap();
        let h = DegreeHistogram::build(&g, p, End::Subject);
        assert_eq!(h.max, 1);
        assert!((h.mean - 1.0).abs() < 1e-9);
        assert!((h.skew() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_predicate_histogram() {
        let mut b = GraphBuilder::new();
        b.intern_predicate("Q");
        b.add("a", "P", "b");
        let g = b.build();
        let q = g.dictionary().predicate_id("Q").unwrap();
        let h = DegreeHistogram::build(&g, q, End::Subject);
        assert_eq!(h.distinct_nodes, 0);
        assert_eq!(h.max, 0);
        assert_eq!(h.skew(), 0.0);
        assert!(h.bucket_bounds.is_empty());
    }

    #[test]
    fn mean_times_distinct_equals_edges() {
        let g = hub_index();
        let p = g.dictionary().predicate_id("P").unwrap();
        for end in [End::Subject, End::Object] {
            let h = DegreeHistogram::build(&g, p, end);
            let reconstructed = (h.mean * h.distinct_nodes as f64).round() as usize;
            assert_eq!(reconstructed, h.total_edges);
        }
    }
}

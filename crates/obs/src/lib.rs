//! # Wireframe observability — the one telemetry subsystem of the workspace.
//!
//! Every layer of the serving stack (engines → views → session → cluster →
//! serve) records into the same three primitives, owned by a shared
//! [`Registry`]:
//!
//! * [`Counter`] — a named monotone `u64`, one relaxed `fetch_add` per
//!   record. The session/cluster/server counters that used to live in
//!   ad-hoc `AtomicU64` fields are now registry-owned handles, so a
//!   [`MetricsSnapshot`] is the single source of truth.
//! * [`Gauge`] — a named point-in-time `u64` (overlay sizes, active
//!   connections), one relaxed `store` per set.
//! * [`Histogram`] — a fixed-bucket **log-linear** latency histogram
//!   (microseconds): 8 sub-buckets per power of two, so any quantile is
//!   reported within 12.5 % of the true sample value. Recording is one
//!   relaxed `fetch_add` into a bucket; histograms **merge** exactly
//!   (bucket-wise addition), which is what makes per-shard and per-thread
//!   recording composable — the property the merge tests pin.
//!
//! [`Registry::snapshot`] exports everything as plain data
//! ([`MetricsSnapshot`]), which supports [`MetricsSnapshot::merge`] (shard
//! aggregation), [`MetricsSnapshot::delta`] (before/after benchmark
//! windows), p50/p95/p99/p999 extraction via [`HistogramSnapshot::quantile`]
//! (the same nearest-rank math the bench driver uses on raw samples,
//! extracted here as [`percentile_sorted`]), and a Prometheus-style text
//! rendering ([`render_prometheus`]) for scrape endpoints.
//!
//! [`Tracer`] adds structured spans for the query pipeline: sampled (1 in N)
//! span trees with a bounded ring-buffer sink and an optional slow-query
//! threshold that emits completed span trees for outliers. Span recording
//! is post-hoc — spans are synthesized from already-measured phase timings
//! after the query returns — so the non-sampled hot path pays one relaxed
//! counter increment and one comparison.
//!
//! The crate is dependency-free (std only), consistent with the workspace's
//! hand-rolled vendor policy, and sits at the bottom of the dependency
//! graph so every layer can reach it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod prom;
mod trace;

pub use metrics::{
    percentile_ms, percentile_sorted, Counter, Gauge, Histogram, HistogramSnapshot,
    MetricsSnapshot, Registry, BUCKET_COUNT,
};
pub use prom::render_prometheus;
pub use trace::{Span, Tracer, TracerConfig};

/// Canonical metric names, shared by recorders ([`Registry`] users) and
/// consumers (`ExecutorStats::from_snapshot`, dashboards, the docs
/// catalog) so the two can never drift apart.
pub mod names {
    /// Prepared-plan cache hits (session).
    pub const CACHE_HITS: &str = "executor.cache_hits";
    /// Prepared-plan cache misses (session).
    pub const CACHE_MISSES: &str = "executor.cache_misses";
    /// Cache entries evicted by the capacity bound.
    pub const CACHE_EVICTIONS: &str = "executor.cache_evictions";
    /// Cache entries evicted by mutation footprints.
    pub const CACHE_INVALIDATIONS: &str = "executor.cache_invalidations";
    /// Evaluations served purely from a retained view.
    pub const VIEW_SERVES: &str = "executor.view_serves";
    /// Full pipeline runs (evaluations + view materializations).
    pub const FULL_EVALUATIONS: &str = "executor.full_evaluations";
    /// Retained views maintained in place by mutations.
    pub const PLANS_MAINTAINED: &str = "executor.plans_maintained";
    /// Maintenance frontier nodes across all maintained views.
    pub const MAINTENANCE_FRONTIER_NODES: &str = "executor.maintenance_frontier_nodes";
    /// Wall-clock spent maintaining views, microseconds.
    pub const MAINTENANCE_MICROS: &str = "executor.maintenance_micros";
    /// Cache entries examined by mutation footprint passes.
    pub const MUTATION_CACHE_TOUCHES: &str = "executor.mutation_cache_touches";
    /// Delta-store compactions triggered by mutations.
    pub const COMPACTIONS: &str = "executor.compactions";

    /// End-to-end query latency (execute call to return), microseconds.
    pub const QUERY_LATENCY_US: &str = "query.latency_us";
    /// Per-mutation-batch view-maintenance cost, microseconds.
    pub const MAINTAIN_BATCH_US: &str = "maintain.batch_us";
    /// Per-view maintenance cost within a batch, microseconds.
    pub const MAINTAIN_VIEW_US: &str = "maintain.view_us";
    /// Bounded queries served from a maintained top-k prefix in O(k).
    pub const MAINTAIN_PREFIX_HITS: &str = "maintain.prefix_hits";
    /// Prefix refills: re-enumerations after the prefix underflowed below k
    /// (or to warm a cold prefix).
    pub const MAINTAIN_PREFIX_REFILLS: &str = "maintain.prefix_refills";
    /// Prefix fallbacks: maintenance passes that abandoned incremental
    /// prefix upkeep because the delta invalidated too much.
    pub const MAINTAIN_PREFIX_FALLBACKS: &str = "maintain.prefix_fallbacks";
    /// Rows retained across all maintained top-k prefixes (gauge).
    pub const MAINTAIN_PREFIX_ROWS: &str = "maintain.prefix_rows";

    /// Total triples in the current graph version (gauge).
    pub const GRAPH_TRIPLES: &str = "graph.triples";
    /// Delta-store overlay size in edges (gauge; 0 on csr/map stores).
    pub const GRAPH_OVERLAY_EDGES: &str = "graph.delta_overlay_edges";
    /// Delta-store overlay/base fraction in parts per million (gauge).
    pub const GRAPH_OVERLAY_PPM: &str = "graph.delta_overlay_ppm";

    /// Shards in a sharded cluster (gauge; absent on a plain session).
    pub const CLUSTER_SHARDS: &str = "cluster.shards";
    /// Scatter phase (parallel per-shard candidate scans), microseconds.
    pub const CLUSTER_SCATTER_US: &str = "cluster.scatter_us";
    /// Gather phase (merge of per-shard candidates), microseconds.
    pub const CLUSTER_MERGE_US: &str = "cluster.merge_us";

    /// Connections accepted by the serve layer.
    pub const SERVE_CONNECTIONS: &str = "serve.connections";
    /// Requests received (parsed frames).
    pub const SERVE_REQUESTS: &str = "serve.requests";
    /// Queries answered.
    pub const SERVE_QUERIES: &str = "serve.queries";
    /// Mutate requests acknowledged.
    pub const SERVE_MUTATIONS: &str = "serve.mutations";
    /// Mutation batches applied.
    pub const SERVE_MUTATION_BATCHES: &str = "serve.mutation_batches";
    /// Mutate requests coalesced into shared batches.
    pub const SERVE_COALESCED_MUTATIONS: &str = "serve.coalesced_mutations";
    /// Requests shed because the job queue was full.
    pub const SERVE_SHED_QUEUE_FULL: &str = "serve.shed_queue_full";
    /// Requests shed because their queueing deadline expired.
    pub const SERVE_SHED_DEADLINE: &str = "serve.shed_deadline";
    /// Subscription updates pushed.
    pub const SERVE_UPDATES_PUSHED: &str = "serve.updates_pushed";
    /// Active subscriptions (gauge).
    pub const SERVE_SUBSCRIPTIONS_ACTIVE: &str = "serve.subscriptions_active";
    /// End-to-end request handling latency on a worker, microseconds.
    pub const SERVE_REQUEST_US: &str = "serve.request_us";
}

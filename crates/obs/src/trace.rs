//! Structured tracing spans for the query pipeline, with sampling, a
//! ring-buffer sink, and a slow-query log.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

/// One node of a completed span tree: a named pipeline stage, its duration,
/// key/value context fields, and child stages.
///
/// Spans are built **post-hoc** from phase timings the pipeline already
/// measures (`Timings`, maintenance passes), never by instrumenting the hot
/// path with live scopes — the non-sampled fast path pays one counter
/// increment, nothing else.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Stage name (`query`, `plan`, `defactorize`, …).
    pub name: String,
    /// Wall-clock duration of the stage, microseconds.
    pub duration_micros: u64,
    /// Context fields (query signature hash, engine, store kind, shard id,
    /// epoch vector, …) in insertion order.
    pub fields: Vec<(String, String)>,
    /// Child stages in pipeline order.
    pub children: Vec<Span>,
}

impl Span {
    /// A leaf span.
    pub fn new(name: impl Into<String>, duration: Duration) -> Self {
        Span {
            name: name.into(),
            duration_micros: duration.as_micros().min(u64::MAX as u128) as u64,
            fields: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Adds a context field (builder-style).
    pub fn field(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.fields.push((key.into(), value.into()));
        self
    }

    /// Adds a child stage (builder-style). Zero-duration stages are worth
    /// skipping at the call site — `child_if_nonzero` does that.
    pub fn child(mut self, child: Span) -> Self {
        self.children.push(child);
        self
    }

    /// Adds `child` only when its duration is non-zero, so synthesized
    /// trees omit stages that did not run (e.g. edge burnback on an
    /// acyclic query).
    pub fn child_if_nonzero(self, child: Span) -> Self {
        if child.duration_micros == 0 {
            self
        } else {
            self.child(child)
        }
    }

    /// Renders the tree as indented text, one stage per line:
    ///
    /// ```text
    /// query 1234µs engine=wireframe store=delta
    ///   plan 56µs
    ///   defactorize 1100µs
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        for _ in 0..depth {
            out.push_str("  ");
        }
        out.push_str(&self.name);
        out.push_str(&format!(" {}µs", self.duration_micros));
        for (key, value) in &self.fields {
            out.push_str(&format!(" {key}={value}"));
        }
        out.push('\n');
        for child in &self.children {
            child.render_into(out, depth + 1);
        }
    }
}

/// Tracer knobs, owned by the layer that builds the [`Tracer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TracerConfig {
    /// Master switch: disabled, [`Tracer::wants`] is always false and
    /// nothing is recorded (`--obs off`).
    pub enabled: bool,
    /// Keep 1 in `sample_every` completed spans (1 = every span, for
    /// one-shot `--trace` runs; the serving default keeps overhead under
    /// the serve-net lane's 2 % budget).
    pub sample_every: u64,
    /// Emit any span tree at least this slow to the slow-query log
    /// (stderr), regardless of sampling. 0 disables the log.
    pub slow_micros: u64,
    /// Completed spans retained in the ring-buffer sink.
    pub ring_capacity: usize,
}

impl Default for TracerConfig {
    fn default() -> Self {
        TracerConfig {
            enabled: true,
            sample_every: 64,
            slow_micros: 0,
            ring_capacity: 128,
        }
    }
}

/// The span sink of one layer: sampling decision, bounded ring buffer, and
/// the slow-query log.
#[derive(Debug, Default)]
pub struct Tracer {
    config: TracerConfig,
    ticks: AtomicU64,
    ring: Mutex<std::collections::VecDeque<Span>>,
}

impl Tracer {
    /// A tracer with the given knobs.
    pub fn new(config: TracerConfig) -> Self {
        Tracer {
            config,
            ticks: AtomicU64::new(0),
            ring: Mutex::new(std::collections::VecDeque::new()),
        }
    }

    /// The knobs in effect.
    pub fn config(&self) -> TracerConfig {
        self.config
    }

    /// Whether a just-completed query of `duration` should have its span
    /// tree built: sampled in (1 in `sample_every`), or slow enough for the
    /// slow-query log. Call once per query *after* it returns — building
    /// the tree only happens when this says so.
    pub fn wants(&self, duration: Duration) -> bool {
        if !self.config.enabled {
            return false;
        }
        let sampled = self
            .ticks
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(self.config.sample_every.max(1));
        sampled || self.is_slow(duration)
    }

    /// Whether `duration` crosses the slow-query threshold.
    pub fn is_slow(&self, duration: Duration) -> bool {
        self.config.slow_micros > 0 && duration.as_micros() as u64 >= self.config.slow_micros
    }

    /// Records a completed span tree: pushes it into the ring (evicting the
    /// oldest beyond capacity) and emits it to the slow-query log (stderr)
    /// when it crosses the threshold.
    pub fn record(&self, span: Span) {
        if !self.config.enabled {
            return;
        }
        if self.is_slow(Duration::from_micros(span.duration_micros)) {
            eprintln!(
                "[slow-query ≥{}µs]\n{}",
                self.config.slow_micros,
                span.render()
            );
        }
        let mut ring = self.ring();
        if self.config.ring_capacity > 0 && ring.len() >= self.config.ring_capacity {
            ring.pop_front();
        }
        ring.push_back(span);
    }

    /// The retained spans, oldest first.
    pub fn recent(&self) -> Vec<Span> {
        self.ring().iter().cloned().collect()
    }

    fn ring(&self) -> MutexGuard<'_, std::collections::VecDeque<Span>> {
        self.ring.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_trees_render_with_fields_and_indentation() {
        let span = Span::new("query", Duration::from_micros(1234))
            .field("engine", "wireframe")
            .field("store", "delta")
            .child(Span::new("plan", Duration::from_micros(56)))
            .child_if_nonzero(Span::new("edge_burnback", Duration::ZERO))
            .child_if_nonzero(
                Span::new("defactorize", Duration::from_micros(1100)).field("path", "view"),
            );
        let text = span.render();
        assert_eq!(
            text,
            "query 1234µs engine=wireframe store=delta\n  plan 56µs\n  defactorize 1100µs path=view\n"
        );
        assert!(!text.contains("edge_burnback"), "zero stages are omitted");
    }

    #[test]
    fn sampling_keeps_one_in_n_plus_slow_outliers() {
        let tracer = Tracer::new(TracerConfig {
            sample_every: 10,
            slow_micros: 5_000,
            ..TracerConfig::default()
        });
        let fast = Duration::from_micros(100);
        let wanted = (0..100).filter(|_| tracer.wants(fast)).count();
        assert_eq!(wanted, 10, "1 in 10 of the fast queries");
        assert!(tracer.wants(Duration::from_millis(6)), "slow always wanted");
        assert!(tracer.is_slow(Duration::from_millis(5)));
        assert!(!tracer.is_slow(Duration::from_millis(4)));
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::new(TracerConfig {
            enabled: false,
            ..TracerConfig::default()
        });
        assert!(!tracer.wants(Duration::from_secs(10)));
        tracer.record(Span::new("query", Duration::from_secs(10)));
        assert!(tracer.recent().is_empty());
    }

    #[test]
    fn ring_buffer_is_bounded_and_ordered() {
        let tracer = Tracer::new(TracerConfig {
            ring_capacity: 3,
            ..TracerConfig::default()
        });
        for i in 0..5 {
            tracer.record(Span::new(format!("q{i}"), Duration::from_micros(i)));
        }
        let names: Vec<String> = tracer.recent().into_iter().map(|s| s.name).collect();
        assert_eq!(names, ["q2", "q3", "q4"], "oldest evicted, order kept");
    }
}

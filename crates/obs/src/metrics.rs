//! The metrics registry: counters, gauges, log-linear histograms, and the
//! plain-data snapshots they export.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Sub-buckets per power of two (`2^SUB_BITS`), the histogram's relative
/// resolution: any recorded value lands in a bucket whose width is at most
/// 1/8 of its lower bound, so a quantile read back from bucket counts is
/// within 12.5 % of the true sample value.
const SUB_BITS: u32 = 3;
const SUB: u64 = 1 << SUB_BITS;

/// Highest most-significant-bit position covered by a dedicated bucket
/// (values up to `2^(TOP_MSB+1)` µs ≈ 12.7 days); anything larger lands in
/// the saturating last bucket.
const TOP_MSB: u32 = 39;

/// Number of buckets in every [`Histogram`]: a linear region (one bucket
/// per value below `SUB`) followed by `SUB` log-linear buckets per octave.
pub const BUCKET_COUNT: usize = (SUB + (TOP_MSB as u64 - SUB_BITS as u64 + 1) * SUB) as usize;

/// The bucket index a value records into.
fn bucket_index(value: u64) -> usize {
    if value < SUB {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    if msb > TOP_MSB {
        return BUCKET_COUNT - 1;
    }
    let sub = (value >> (msb - SUB_BITS)) - SUB;
    (SUB + (msb - SUB_BITS) as u64 * SUB + sub) as usize
}

/// The `[lower, upper]` (inclusive) value range of bucket `index`.
/// The saturating last bucket's upper bound is `u64::MAX`.
pub(crate) fn bucket_bounds(index: usize) -> (u64, u64) {
    let index = index as u64;
    if index < SUB {
        return (index, index);
    }
    let octave = (index - SUB) / SUB + SUB_BITS as u64;
    let sub = (index - SUB) % SUB;
    let width = 1u64 << (octave - SUB_BITS as u64);
    let lower = (SUB + sub) * width;
    if index as usize == BUCKET_COUNT - 1 {
        (lower, u64::MAX)
    } else {
        (lower, lower + width - 1)
    }
}

/// A monotone named counter: one relaxed `fetch_add` per record. Handles
/// are cheap clones of a registry-owned atomic, so recording never takes a
/// lock — exactly the cost of the ad-hoc `AtomicU64` fields this replaces.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time named value: one relaxed `store` per set.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The shared storage behind a [`Histogram`] handle.
#[derive(Debug)]
struct HistogramCore {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            buckets: (0..BUCKET_COUNT).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// A fixed-bucket log-linear latency histogram (microseconds).
///
/// A disabled handle (`wfbench --obs off`, [`Registry::counters_only`])
/// carries no storage and records are no-ops, so the A/B overhead flag
/// removes histogram costs without touching call sites.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    /// Records one value (clamped into the saturating top bucket).
    pub fn record(&self, value: u64) {
        if let Some(core) = &self.0 {
            core.record(value);
        }
    }

    /// Records a duration as whole microseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Number of recorded values (0 for a disabled handle).
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |core| core.count.load(Ordering::Relaxed))
    }
}

/// The exported state of one histogram: plain data, mergeable, and
/// quantile-extractable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Per-bucket counts, [`BUCKET_COUNT`] long (shorter vectors decode
    /// leniently as trailing zeros).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile (`p` in 0..=100) over the bucket counts: the
    /// upper bound of the bucket holding the rank, so the reported value is
    /// ≥ the true sample quantile and within one bucket width (≤ 12.5 %) of
    /// it. Returns 0 when empty. The saturating top bucket reports its
    /// lower bound (its upper bound is unbounded).
    pub fn quantile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let (lower, upper) = bucket_bounds(index);
                return if index == BUCKET_COUNT - 1 {
                    lower
                } else {
                    upper
                };
            }
        }
        self.max
    }

    /// Adds another snapshot's buckets into this one. Merging per-shard or
    /// per-thread histograms is exact: the merged bucket counts equal those
    /// of one histogram fed the concatenated samples, so quantiles agree
    /// bucket-for-bucket (the merge property tests pin this).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (into, &from) in self.buckets.iter_mut().zip(&other.buckets) {
            *into += from;
        }
    }

    /// The bucket-wise difference `self - before`, for before/after
    /// measurement windows (saturating, so a restarted source reads as
    /// zero rather than wrapping).
    pub fn delta(&self, before: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets: Vec<u64> = self.buckets.clone();
        for (into, &b) in buckets.iter_mut().zip(&before.buckets) {
            *into = into.saturating_sub(b);
        }
        HistogramSnapshot {
            count: self.count.saturating_sub(before.count),
            sum: self.sum.saturating_sub(before.sum),
            max: self.max, // max is not delta-able; keep the window's upper bound
            buckets,
        }
    }
}

/// A full registry export: plain data, mergeable, delta-able, renderable.
/// `BTreeMap` keys keep every rendering and wire encoding deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// A counter's value (0 when absent — decoders and old peers omit
    /// counters they do not know).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A gauge's value (0 when absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// A histogram's state, when present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Folds `other` into this snapshot: counters add, gauges add (a merged
    /// gauge reads as the total across sources — overlay edges across
    /// shards, connections across listeners), histograms merge bucket-wise.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, value) in &other.gauges {
            *self.gauges.entry(name.clone()).or_insert(0) += value;
        }
        for (name, hist) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(hist);
        }
    }

    /// The difference `self - before` for counters and histograms; gauges
    /// keep their current (point-in-time) values.
    pub fn delta(&self, before: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(name, &v)| (name.clone(), v.saturating_sub(before.counter(name))))
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(name, hist)| {
                    let base = before.histograms.get(name);
                    let d = match base {
                        Some(b) => hist.delta(b),
                        None => hist.clone(),
                    };
                    (name.clone(), d)
                })
                .collect(),
        }
    }

    /// A copy with every metric name prefixed (`shard0.` …), used by the
    /// sharded cluster to publish per-shard breakdowns next to the merged
    /// aggregate without name collisions.
    pub fn prefixed(&self, prefix: &str) -> MetricsSnapshot {
        let rename = |map: &BTreeMap<String, u64>| {
            map.iter()
                .map(|(name, &v)| (format!("{prefix}{name}"), v))
                .collect()
        };
        MetricsSnapshot {
            counters: rename(&self.counters),
            gauges: rename(&self.gauges),
            histograms: self
                .histograms
                .iter()
                .map(|(name, hist)| (format!("{prefix}{name}"), hist.clone()))
                .collect(),
        }
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCore>>>,
    histograms_enabled: bool,
}

/// The named-metric registry one layer (session, cluster, server) owns.
///
/// Handle creation ([`Registry::counter`] …) takes a short lock and is done
/// once at construction; recording through a handle is lock-free. Clones
/// share the same storage.
#[derive(Debug, Clone)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// A registry with every metric kind enabled.
    pub fn new() -> Self {
        Registry {
            inner: Arc::new(RegistryInner {
                histograms_enabled: true,
                ..RegistryInner::default()
            }),
        }
    }

    /// A registry whose histogram handles are no-ops (`--obs off`).
    /// Counters and gauges stay live: they are functionally load-bearing
    /// (benchmark baselines compare them exactly), only the distribution
    /// tracking is optional.
    pub fn counters_only() -> Self {
        Registry {
            inner: Arc::new(RegistryInner::default()),
        }
    }

    /// Whether histogram handles record (false under `--obs off`).
    pub fn histograms_enabled(&self) -> bool {
        self.inner.histograms_enabled
    }

    fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
        m.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The counter named `name`, created at zero on first use.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = Self::lock(&self.inner.counters);
        Counter(Arc::clone(map.entry(name.to_owned()).or_default()))
    }

    /// The gauge named `name`, created at zero on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = Self::lock(&self.inner.gauges);
        Gauge(Arc::clone(map.entry(name.to_owned()).or_default()))
    }

    /// The histogram named `name`, created empty on first use (a no-op
    /// handle when the registry is [`Registry::counters_only`]).
    pub fn histogram(&self, name: &str) -> Histogram {
        if !self.inner.histograms_enabled {
            return Histogram(None);
        }
        let mut map = Self::lock(&self.inner.histograms);
        Histogram(Some(Arc::clone(
            map.entry(name.to_owned())
                .or_insert_with(|| Arc::new(HistogramCore::new())),
        )))
    }

    /// Exports every metric as plain data. Concurrent recording keeps
    /// going; the snapshot is a relaxed read of each atomic, which is the
    /// right consistency for monitoring (monotone counters never read
    /// backwards between snapshots).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: Self::lock(&self.inner.counters)
                .iter()
                .map(|(name, v)| (name.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: Self::lock(&self.inner.gauges)
                .iter()
                .map(|(name, v)| (name.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            histograms: Self::lock(&self.inner.histograms)
                .iter()
                .map(|(name, core)| (name.clone(), core.snapshot()))
                .collect(),
        }
    }
}

/// Nearest-rank percentile of an unsorted sample list (`p` in 0..=100).
/// Extracted from the bench driver so every consumer (reports, histogram
/// quantiles, tests) shares one definition.
pub fn percentile_ms(samples: &[f64], p: f64) -> f64 {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
    percentile_sorted(&sorted, p)
}

/// Nearest-rank percentile of an already ascending-sorted sample list, so
/// one sort serves every percentile of a report.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_bounds_are_inverse() {
        // Every bucket's bounds map back to the bucket, and the buckets
        // tile the value axis without gaps or overlaps.
        let mut next_expected = 0u64;
        for index in 0..BUCKET_COUNT {
            let (lower, upper) = bucket_bounds(index);
            assert_eq!(
                lower,
                next_expected,
                "bucket {index} starts where {} ended",
                index.wrapping_sub(1)
            );
            assert_eq!(bucket_index(lower), index);
            if index < BUCKET_COUNT - 1 {
                assert_eq!(bucket_index(upper), index);
                next_expected = upper + 1;
            }
        }
        assert_eq!(
            bucket_index(u64::MAX),
            BUCKET_COUNT - 1,
            "saturating top bucket"
        );
    }

    #[test]
    fn bucket_resolution_is_within_an_eighth() {
        for index in (SUB as usize)..(BUCKET_COUNT - 1) {
            let (lower, upper) = bucket_bounds(index);
            let width = upper - lower + 1;
            assert!(
                width * SUB <= lower,
                "bucket {index} ([{lower}, {upper}]) wider than lower/8"
            );
        }
    }

    #[test]
    fn counters_and_gauges_record_through_clones() {
        let registry = Registry::new();
        let c = registry.counter("c");
        let c2 = registry.counter("c");
        c.inc();
        c2.add(4);
        assert_eq!(c.get(), 5, "same-name handles share storage");
        let g = registry.gauge("g");
        g.set(7);
        g.set(3);
        assert_eq!(registry.gauge("g").get(), 3);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("c"), 5);
        assert_eq!(snap.gauge("g"), 3);
        assert_eq!(snap.counter("absent"), 0, "absent counters read as zero");
    }

    #[test]
    fn histogram_quantiles_track_true_percentiles_within_resolution() {
        let registry = Registry::new();
        let h = registry.histogram("lat");
        // A deterministic skewed sample set (no external PRNG: xorshift).
        let mut x = 0x9E3779B97F4A7C15u64;
        let mut samples: Vec<u64> = (0..10_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x % 1_000_000
            })
            .collect();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        let snap = registry.snapshot();
        let hist = snap.histogram("lat").unwrap();
        for p in [50.0, 95.0, 99.0, 99.9] {
            let truth = {
                let rank = ((p / 100.0) * samples.len() as f64).ceil() as usize;
                samples[rank.clamp(1, samples.len()) - 1]
            };
            let q = hist.quantile(p);
            assert!(q >= truth, "p{p}: {q} < true {truth}");
            // Upper bound of the bucket holding the rank: within one bucket
            // width, i.e. ≤ 12.5 % above the true value (+1 for the linear
            // region's integer grain).
            assert!(
                q <= truth + truth / 8 + 1,
                "p{p}: {q} beyond bucket resolution of true {truth}"
            );
        }
        assert_eq!(hist.count, 10_000);
        assert_eq!(hist.max, *samples.last().unwrap());
    }

    #[test]
    fn merged_histograms_report_identical_quantiles_to_concatenated() {
        // Satellite: per-shard/per-thread recording must compose. Feed the
        // same sample stream (a) split across 4 histograms then merged, and
        // (b) into one histogram; bucket counts — hence quantiles — must be
        // identical, not merely close.
        let registry = Registry::new();
        let shards: Vec<Histogram> = (0..4)
            .map(|i| registry.histogram(&format!("shard{i}")))
            .collect();
        let single = registry.histogram("single");
        let mut x = 0xC0FFEEu64;
        for k in 0..5_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let v = x % 250_000;
            shards[k % 4].record(v);
            single.record(v);
        }
        let snap = registry.snapshot();
        let mut merged = HistogramSnapshot::default();
        for i in 0..4 {
            merged.merge(snap.histogram(&format!("shard{i}")).unwrap());
        }
        let reference = snap.histogram("single").unwrap();
        assert_eq!(&merged, reference, "merge is exact, bucket for bucket");
        for p in [0.0, 50.0, 95.0, 99.0, 99.9, 100.0] {
            assert_eq!(merged.quantile(p), reference.quantile(p));
        }
    }

    #[test]
    fn histogram_edge_cases_empty_single_and_saturating() {
        let registry = Registry::new();
        // Empty: all quantiles are zero.
        let _empty = registry.histogram("empty");
        let hist = registry.snapshot().histogram("empty").unwrap().clone();
        assert_eq!(hist.quantile(50.0), 0);
        assert_eq!(hist.quantile(99.9), 0);
        assert_eq!(hist.mean(), 0.0);

        // Single sample: every quantile is that sample's bucket.
        let one = registry.histogram("one");
        one.record(777);
        let hist = registry.snapshot().histogram("one").unwrap().clone();
        let (lower, upper) = bucket_bounds(bucket_index(777));
        for p in [0.0, 50.0, 100.0] {
            let q = hist.quantile(p);
            assert!(q >= lower && q <= upper, "single-sample quantile {q}");
            assert!(q >= 777);
        }
        assert_eq!(hist.count, 1);
        assert_eq!(hist.max, 777);

        // Saturating bucket: enormous values clamp, quantile reports the
        // top bucket's lower bound instead of a fictitious u64::MAX.
        let sat = registry.histogram("sat");
        sat.record(u64::MAX);
        sat.record(u64::MAX - 1);
        let hist = registry.snapshot().histogram("sat").unwrap().clone();
        let (top_lower, top_upper) = bucket_bounds(BUCKET_COUNT - 1);
        assert_eq!(top_upper, u64::MAX);
        assert_eq!(hist.quantile(50.0), top_lower);
        assert_eq!(hist.buckets[BUCKET_COUNT - 1], 2);

        // Merging an empty histogram is the identity.
        let mut merged = hist.clone();
        merged.merge(&HistogramSnapshot::default());
        assert_eq!(merged, hist);
    }

    #[test]
    fn counters_only_registry_disables_histograms_not_counters() {
        let registry = Registry::counters_only();
        assert!(!registry.histograms_enabled());
        let h = registry.histogram("lat");
        h.record(123);
        h.record_duration(Duration::from_millis(5));
        assert_eq!(h.count(), 0, "no-op handle records nothing");
        let c = registry.counter("c");
        c.inc();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("c"), 1, "counters stay live");
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn snapshot_merge_delta_and_prefix() {
        let a = Registry::new();
        a.counter("requests").add(10);
        a.gauge("overlay").set(3);
        a.histogram("lat").record(100);
        let b = Registry::new();
        b.counter("requests").add(5);
        b.gauge("overlay").set(4);
        b.histogram("lat").record(200);

        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.counter("requests"), 15);
        assert_eq!(merged.gauge("overlay"), 7, "gauges total across sources");
        assert_eq!(merged.histogram("lat").unwrap().count, 2);

        a.counter("requests").add(7);
        a.histogram("lat").record(300);
        let delta = a.snapshot().delta(&{
            let mut before = MetricsSnapshot::default();
            before.counters.insert("requests".into(), 10);
            before
        });
        assert_eq!(delta.counter("requests"), 7);
        assert_eq!(
            delta.histogram("lat").unwrap().count,
            2,
            "no baseline histogram: full"
        );

        let prefixed = b.snapshot().prefixed("shard1.");
        assert_eq!(prefixed.counter("shard1.requests"), 5);
        assert_eq!(prefixed.counter("requests"), 0);
        assert!(prefixed.histogram("shard1.lat").is_some());
    }

    #[test]
    fn histogram_delta_subtracts_a_window() {
        let r = Registry::new();
        let h = r.histogram("lat");
        h.record(10);
        h.record(20);
        let before = r.snapshot();
        h.record(1_000);
        let window = r
            .snapshot()
            .histogram("lat")
            .unwrap()
            .delta(before.histogram("lat").unwrap());
        assert_eq!(window.count, 1);
        assert_eq!(window.sum, 1_000);
        let (lower, upper) = bucket_bounds(bucket_index(1_000));
        let q = window.quantile(50.0);
        assert!(q >= lower && q <= upper);
    }

    #[test]
    fn percentiles_follow_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile_ms(&samples, 50.0), 50.0);
        assert_eq!(percentile_ms(&samples, 95.0), 95.0);
        assert_eq!(percentile_ms(&samples, 99.0), 99.0);
        assert_eq!(percentile_ms(&samples, 100.0), 100.0);
        assert_eq!(percentile_ms(&[7.0], 50.0), 7.0);
        assert_eq!(percentile_ms(&[], 50.0), 0.0);
    }
}

//! Prometheus-style text exposition of a [`MetricsSnapshot`].

use crate::metrics::MetricsSnapshot;

/// Sanitizes a registry metric name into the Prometheus grammar
/// (`[a-zA-Z_][a-zA-Z0-9_]*`): dots and other separators become
/// underscores, and everything is namespaced under `wf_`.
fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 3);
    out.push_str("wf_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders a snapshot in the Prometheus text exposition format: counters
/// and gauges as plain samples, histograms as summaries (`quantile`
/// labels plus `_count`/`_sum`/`_max`), with quantile values converted
/// from recorded microseconds to seconds per the Prometheus base-unit
/// convention. Deterministic: names render in sorted order.
pub fn render_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let name = prom_name(name);
        out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
    }
    for (name, value) in &snapshot.gauges {
        let name = prom_name(name);
        out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
    }
    for (name, hist) in &snapshot.histograms {
        let name = prom_name(name);
        out.push_str(&format!("# TYPE {name} summary\n"));
        for (label, p) in [
            ("0.5", 50.0),
            ("0.95", 95.0),
            ("0.99", 99.0),
            ("0.999", 99.9),
        ] {
            out.push_str(&format!(
                "{name}{{quantile=\"{label}\"}} {}\n",
                hist.quantile(p) as f64 / 1e6
            ));
        }
        out.push_str(&format!("{name}_sum {}\n", hist.sum as f64 / 1e6));
        out.push_str(&format!("{name}_count {}\n", hist.count));
        out.push_str(&format!("{name}_max {}\n", hist.max as f64 / 1e6));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn rendering_is_deterministic_and_prometheus_shaped() {
        let registry = Registry::new();
        registry.counter("serve.requests").add(42);
        registry.gauge("graph.delta_overlay_edges").set(7);
        let h = registry.histogram("query.latency_us");
        h.record(1_000); // 1 ms
        h.record(2_000);
        let text = render_prometheus(&registry.snapshot());
        assert_eq!(text, render_prometheus(&registry.snapshot()));
        assert!(text.contains("# TYPE wf_serve_requests counter\nwf_serve_requests 42\n"));
        assert!(text.contains("# TYPE wf_graph_delta_overlay_edges gauge\n"));
        assert!(text.contains("wf_graph_delta_overlay_edges 7\n"));
        assert!(text.contains("# TYPE wf_query_latency_us summary\n"));
        assert!(text.contains("wf_query_latency_us_count 2\n"));
        assert!(text.contains("wf_query_latency_us_sum 0.003\n"));
        // Quantile samples carry the quantile label and are in seconds.
        let p50 = text
            .lines()
            .find(|l| l.starts_with("wf_query_latency_us{quantile=\"0.5\"}"))
            .expect("p50 sample");
        let value: f64 = p50.split_whitespace().nth(1).unwrap().parse().unwrap();
        assert!((0.001..0.0012).contains(&value), "p50 ≈ 1 ms, got {value}");
        // Every non-comment line parses as `name{labels}? value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.split_whitespace();
            let name = parts.next().unwrap();
            assert!(name.starts_with("wf_"), "{line}");
            parts.next().unwrap().parse::<f64>().expect(line);
            assert_eq!(parts.next(), None, "{line}");
        }
    }
}

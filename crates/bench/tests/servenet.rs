//! The serve-net acceptance tests: a 4-client seeded mixed read/write run
//! over real TCP sockets with subscription-loss checking, and an induced
//! overload that must shed with `overloaded` instead of queueing.

use std::sync::Arc;
use std::time::Duration;

use wireframe::{QueryExecutor, Session};
use wireframe_bench::servenet::{run_serve_net, ServeNetOptions};
use wireframe_bench::{build_dataset_with_store, DatasetSize};
use wireframe_datagen::full_workload;
use wireframe_graph::StoreKind;
use wireframe_serve::ServeConfig;

fn tiny_session() -> (
    Arc<dyn QueryExecutor>,
    Vec<wireframe_datagen::BenchmarkQuery>,
) {
    let graph = Arc::new(build_dataset_with_store(
        DatasetSize::Tiny,
        StoreKind::Delta,
    ));
    let workload = full_workload(&graph).expect("workload builds");
    (Arc::new(Session::shared(graph)), workload)
}

/// The ISSUE's acceptance criterion: `--clients 4` completes a seeded
/// mixed run over real sockets with zero lost or out-of-order epoch
/// updates on subscriptions (asserted inside the lane — a chain gap
/// panics), and reports tail latency and shed-rate.
#[test]
fn four_clients_complete_a_seeded_mixed_run_with_no_lost_updates() {
    let (session, workload) = tiny_session();
    let opts = ServeNetOptions {
        clients: 4,
        requests: 50,
        ..ServeNetOptions::default()
    };
    let run = run_serve_net(&session, &workload, &opts).unwrap();
    let serve = run
        .serve
        .as_ref()
        .expect("serve-net reports a serve section");

    assert_eq!(serve.clients, 4);
    assert_eq!(serve.requests, 200);
    assert_eq!(serve.queries + serve.mutations, 200);
    assert!(serve.mutations > 0, "the seeded mix writes");
    assert!(serve.queries > 0, "the seeded mix reads");

    // Tail latency and shed-rate are reported.
    assert!(serve.p99_ms > 0.0);
    assert!(serve.p999_ms >= serve.p99_ms);
    assert!(serve.p50_ms <= serve.p99_ms);
    assert!(serve.shed_rate >= 0.0 && serve.shed_rate <= 1.0);
    assert_eq!(serve.shed, 0, "an unloaded server sheds nothing");

    // The graph really advanced, one epoch per applied batch, and the
    // subscriber (whose chain the lane asserts) covered all of them.
    assert!(serve.final_epoch > 0, "mutations actually applied");
    assert_eq!(serve.final_epoch, serve.mutation_batches);
    assert_eq!(session.epoch(), serve.final_epoch);

    // The traffic split is seed-deterministic: a second run over a fresh
    // session reports the identical counts (the baseline-gate contract).
    let (session2, workload2) = tiny_session();
    let run2 = run_serve_net(&session2, &workload2, &opts).unwrap();
    let serve2 = run2.serve.as_ref().unwrap();
    assert_eq!(serve2.queries, serve.queries);
    assert_eq!(serve2.mutations, serve.mutations);
}

/// Induced overload: a zero-depth admission queue must refuse every read
/// with `overloaded` (bounded work, no unbounded queueing) while the run
/// still completes and reports the sheds.
#[test]
fn induced_overload_sheds_reads_instead_of_queueing() {
    let (session, workload) = tiny_session();
    let opts = ServeNetOptions {
        clients: 2,
        requests: 25,
        config: ServeConfig {
            queue_depth: 0,
            ..ServeConfig::default()
        },
        ..ServeNetOptions::default()
    };
    let run = run_serve_net(&session, &workload, &opts).unwrap();
    let serve = run.serve.as_ref().unwrap();
    // Every read is refused at admission; a write racing into the
    // capacity-one mutation channel while the batcher holds its slot can
    // shed too, so shed may slightly exceed the read count.
    assert!(
        serve.shed >= serve.queries,
        "all {} reads must shed at queue bound zero (shed {})",
        serve.queries,
        serve.shed
    );
    assert!(
        serve.shed <= serve.requests,
        "shed {} cannot exceed the {} requests issued",
        serve.shed,
        serve.requests
    );
    assert!(serve.shed > 0, "the mix issues reads to shed");
    assert!(serve.shed_rate > 0.0);
    // Writes ride the (capacity-one) mutation channel: at least the one
    // holding the slot at each drain lands, so the epoch still advances.
    assert!(
        serve.final_epoch > 0,
        "mutations still apply under overload"
    );
}

/// A tightened deadline also sheds (the second admission-control lever);
/// the lane reports it rather than hanging.
#[test]
fn zero_deadline_sheds_at_dequeue() {
    let (session, workload) = tiny_session();
    let opts = ServeNetOptions {
        clients: 1,
        requests: 10,
        write_fraction: 0.0,
        config: ServeConfig {
            deadline: Duration::ZERO,
            ..ServeConfig::default()
        },
        ..ServeNetOptions::default()
    };
    let run = run_serve_net(&session, &workload, &opts).unwrap();
    let serve = run.serve.as_ref().unwrap();
    assert_eq!(serve.shed, 10, "an expired deadline sheds every read");
    assert_eq!(serve.final_epoch, 0, "a read-only mix never mutates");
}

//! Schema back-compat gate: every baseline committed under
//! `bench/baselines/` must parse with the current report reader,
//! whatever schema version it was written at — otherwise bumping
//! `SCHEMA_VERSION` silently disables the CI perf gates.

use wireframe_bench::report::{BenchReport, SCHEMA_VERSION};

fn baselines_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../bench/baselines")
}

#[test]
fn every_committed_baseline_parses() {
    let dir = baselines_dir();
    let mut parsed = 0usize;
    for entry in std::fs::read_dir(&dir).expect("bench/baselines exists") {
        let path = entry.expect("readable directory entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let report = BenchReport::from_json(&text)
            .unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        assert!(
            (1..=SCHEMA_VERSION).contains(&report.schema_version),
            "{}: schema_version {} out of the supported range",
            path.display(),
            report.schema_version
        );
        assert!(
            !report.engines.is_empty(),
            "{}: a baseline without engines gates nothing",
            path.display()
        );
        parsed += 1;
    }
    // The gate files the CI workflow relies on must all be present (new
    // baselines may be added freely; these must not silently vanish).
    for name in [
        "smoke.json",
        "churn.json",
        "churn_reeval.json",
        "serve_net.json",
        "sharded.json",
        "cyclic.json",
    ] {
        assert!(
            dir.join(name).is_file(),
            "bench/baselines/{name} is missing"
        );
    }
    assert!(parsed >= 6, "parsed only {parsed} baselines");
}

#[test]
fn the_cyclic_baseline_records_a_generic_join_advantage() {
    let text = std::fs::read_to_string(baselines_dir().join("cyclic.json"))
        .expect("cyclic.json is committed");
    let report = BenchReport::from_json(&text).expect("cyclic.json parses");
    assert_eq!(report.scenario, "cyclic");
    let names: Vec<&str> = report.engines.iter().map(|e| e.engine.as_str()).collect();
    assert_eq!(names, ["wco", "triangulation"]);
    let (wco, tri) = (&report.engines[0], &report.engines[1]);
    // The lane itself asserted bit-identical embeddings before recording
    // these rows; the committed numbers must agree query by query.
    for (w, t) in wco.queries.iter().zip(&tri.queries) {
        assert_eq!(w.embeddings, t.embeddings, "{}", w.name);
        assert!(
            w.answer_graph_edges.is_some() && t.answer_graph_edges.is_some(),
            "{}: both engines factorize",
            w.name
        );
    }
    // The committed run is the acceptance record for the worst-case-optimal
    // engine: at least 1.2x triangulation throughput on the cyclic lane.
    assert!(
        wco.qps >= 1.2 * tri.qps,
        "committed cyclic baseline shows wco at {:.1} qps vs triangulation {:.1}",
        wco.qps,
        tri.qps
    );
}

#[test]
fn the_serve_net_baseline_records_a_serve_section() {
    let text = std::fs::read_to_string(baselines_dir().join("serve_net.json"))
        .expect("serve_net.json is committed");
    let report = BenchReport::from_json(&text).expect("serve_net.json parses");
    assert_eq!(report.scenario, "serve-net");
    let serve = report.engines[0]
        .serve
        .as_ref()
        .expect("the serve-net baseline carries a serve section");
    assert!(serve.requests > 0);
    assert_eq!(serve.queries + serve.mutations, serve.requests);
}

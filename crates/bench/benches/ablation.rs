//! Criterion bench for the planner ablation: the DP Edgifier versus the
//! greedy planner versus no cost-based planning ("as written"), and planning
//! time itself, over the Table 1 workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use wireframe_bench::{build_dataset, DatasetSize};
use wireframe_core::{EvalOptions, PlannerKind, WireframeEngine};
use wireframe_datagen::table1_queries;

fn bench_planner_ablation(c: &mut Criterion) {
    let graph = build_dataset(DatasetSize::from_env());
    let queries = table1_queries(&graph).expect("workload builds");

    let mut group = c.benchmark_group("ablation_planner");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(6));
    for bq in queries
        .iter()
        .filter(|q| q.row == 1 || q.row == 2 || q.row == 6)
    {
        for kind in [
            PlannerKind::DpLeftDeep,
            PlannerKind::Greedy,
            PlannerKind::AsWritten,
        ] {
            let engine =
                WireframeEngine::with_options(&graph, EvalOptions::default().with_planner(kind));
            group.bench_with_input(
                BenchmarkId::new(format!("{kind:?}"), &bq.name),
                &bq.query,
                |b, q| b.iter(|| engine.execute(q).expect("evaluates").embedding_count()),
            );
        }
    }
    group.finish();

    let mut group = c.benchmark_group("ablation_planning_time");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(4));
    let engine = WireframeEngine::new(&graph);
    for bq in queries.iter().filter(|q| q.row == 1 || q.row == 6) {
        group.bench_with_input(
            BenchmarkId::new("edgifier_dp", &bq.name),
            &bq.query,
            |b, q| b.iter(|| engine.plan(q).expect("plans").estimated_cost),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_planner_ablation);
criterion_main!(benches);

//! Criterion bench for Table 1, rows 6–10: the five diamond-shaped (cyclic)
//! queries (CQ_D) on the Wireframe engine — with and without edge burnback —
//! and both baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use wireframe_baseline::{ExplorationEngine, RelationalEngine};
use wireframe_bench::{build_dataset, DatasetSize};
use wireframe_core::{EvalOptions, WireframeEngine};
use wireframe_datagen::diamond_queries;

fn bench_diamonds(c: &mut Criterion) {
    let graph = build_dataset(DatasetSize::from_env());
    let queries = diamond_queries(&graph).expect("workload builds");
    let wf = WireframeEngine::new(&graph);
    let wf_eb = WireframeEngine::with_options(&graph, EvalOptions::default().with_edge_burnback());
    let rel = RelationalEngine::new(&graph);
    let exp = ExplorationEngine::new(&graph);

    let mut group = c.benchmark_group("table1_diamond");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    for bq in &queries {
        group.bench_with_input(
            BenchmarkId::new("wireframe", &bq.name),
            &bq.query,
            |b, q| b.iter(|| wf.execute(q).expect("evaluates").embedding_count()),
        );
        group.bench_with_input(
            BenchmarkId::new("wireframe_edge_burnback", &bq.name),
            &bq.query,
            |b, q| b.iter(|| wf_eb.execute(q).expect("evaluates").embedding_count()),
        );
        group.bench_with_input(
            BenchmarkId::new("relational", &bq.name),
            &bq.query,
            |b, q| b.iter(|| rel.evaluate(q).expect("evaluates").len()),
        );
        group.bench_with_input(
            BenchmarkId::new("exploration", &bq.name),
            &bq.query,
            |b, q| b.iter(|| exp.evaluate(q).expect("evaluates").len()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_diamonds);
criterion_main!(benches);

//! Criterion (shim) micro-benchmark of storage-backend construction:
//! build time per backend and dataset size, plus a bytes-per-edge report so
//! index memory cost is tracked alongside query latency.
//!
//! Build cost matters because the `Session` facade re-indexes graphs on
//! `--store` switches and because bulk loads gate serving start-up; the
//! bytes-per-edge figure is the space side of the CSR-vs-map trade.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use wireframe_bench::{build_dataset, DatasetSize};
use wireframe_graph::{CsrStore, GraphStore, MapStore, NodeId, PredId, StoreKind};

/// Extracts the raw per-predicate edge lists from a built graph, so both
/// backends are constructed from identical inputs.
fn raw_edges(graph: &wireframe_graph::Graph) -> (usize, Vec<Vec<(NodeId, NodeId)>>) {
    let mut edges = vec![Vec::new(); graph.predicate_count()];
    for p in 0..graph.predicate_count() {
        let p = PredId(p as u32);
        edges[p.index()] = graph.pairs(p).into_owned();
    }
    (graph.node_count(), edges)
}

fn bench_store_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_build");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));

    for size in [DatasetSize::Tiny, DatasetSize::Small] {
        let graph = build_dataset(size);
        let (num_nodes, edges) = raw_edges(&graph);
        let triples = graph.triple_count().max(1);

        group.bench_with_input(BenchmarkId::new("csr", size.name()), &edges, |b, edges| {
            b.iter(|| CsrStore::build(num_nodes, edges.clone()).triple_count())
        });
        group.bench_with_input(BenchmarkId::new("map", size.name()), &edges, |b, edges| {
            b.iter(|| MapStore::build(num_nodes, edges.clone()).triple_count())
        });

        // Bytes-per-edge report (not timed — a space figure to track).
        let csr = CsrStore::build(num_nodes, edges.clone());
        let map = MapStore::build(num_nodes, edges.clone());
        for (kind, store) in [
            (StoreKind::Csr, &csr as &dyn GraphStore),
            (StoreKind::Map, &map as &dyn GraphStore),
        ] {
            println!(
                "store_build/bytes_per_edge/{}/{}: {:.1} B/edge ({} bytes / {} edges)",
                kind.name(),
                size.name(),
                store.heap_bytes() as f64 / triples as f64,
                store.heap_bytes(),
                triples,
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_store_build);
criterion_main!(benches);

//! Criterion bench for Table 1, rows 1–5: the five snowflake-shaped queries
//! (CQ_S) on the Wireframe engine and both baselines.
//!
//! Set `WIREFRAME_BENCH_SIZE=tiny|small|benchmark` to choose the dataset size
//! (default `small`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use wireframe_baseline::{ExplorationEngine, RelationalEngine};
use wireframe_bench::{build_dataset, DatasetSize};
use wireframe_core::WireframeEngine;
use wireframe_datagen::snowflake_queries;

fn bench_snowflakes(c: &mut Criterion) {
    let graph = build_dataset(DatasetSize::from_env());
    let queries = snowflake_queries(&graph).expect("workload builds");
    let wf = WireframeEngine::new(&graph);
    let rel = RelationalEngine::new(&graph);
    let exp = ExplorationEngine::new(&graph);

    let mut group = c.benchmark_group("table1_snowflake");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(8));
    for bq in &queries {
        group.bench_with_input(
            BenchmarkId::new("wireframe", &bq.name),
            &bq.query,
            |b, q| b.iter(|| wf.execute(q).expect("evaluates").embedding_count()),
        );
        group.bench_with_input(
            BenchmarkId::new("relational", &bq.name),
            &bq.query,
            |b, q| b.iter(|| rel.evaluate(q).expect("evaluates").len()),
        );
        group.bench_with_input(
            BenchmarkId::new("exploration", &bq.name),
            &bq.query,
            |b, q| b.iter(|| exp.evaluate(q).expect("evaluates").len()),
        );
        // Phase one in isolation: the factorization step whose output size is
        // the |iAG| column of the table.
        group.bench_with_input(
            BenchmarkId::new("wireframe_phase1", &bq.name),
            &bq.query,
            |b, q| b.iter(|| wf.answer_graph(q).expect("phase one runs").0.total_edges()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_snowflakes);
criterion_main!(benches);

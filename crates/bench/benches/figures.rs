//! Criterion bench for the paper's worked figures:
//!
//! * Figure 1/2 — the chain query CQ_C: answer-graph generation versus full
//!   embedding materialization on a fan-in/fan-out graph scaled up from the
//!   figure's shape.
//! * Figure 4 — the diamond CQ_D: node burnback only versus triangulation +
//!   edge burnback.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use wireframe_baseline::RelationalEngine;
use wireframe_core::{EvalOptions, WireframeEngine};
use wireframe_graph::{Graph, GraphBuilder};
use wireframe_query::parse_query;

/// Scales the Figure 1 shape: `fan` A-edges fan in to a hub, one B-edge, and
/// `fan` C-edges fan out — embeddings grow as `fan²`, the answer graph as `2·fan + 1`.
fn figure1_scaled(fan: usize) -> Graph {
    let mut b = GraphBuilder::new();
    for i in 0..fan {
        b.add(&format!("a{i}"), "A", "hub");
        b.add("mid", "C", &format!("c{i}"));
        // noise that burnback removes
        b.add(&format!("x{i}"), "A", &format!("dead{i}"));
        b.add(&format!("dead{i}"), "C", &format!("y{i}"));
    }
    b.add("hub", "B", "mid");
    b.build()
}

/// The Figure 4 shape with `n` disjoint diamonds and `n` spurious cross edges.
fn figure4_scaled(n: usize) -> Graph {
    let mut b = GraphBuilder::new();
    for i in 0..n {
        b.add(&format!("x{i}"), "A", &format!("e{i}"));
        b.add(&format!("x{i}"), "B", &format!("z{i}"));
        b.add(&format!("e{i}"), "C", &format!("y{i}"));
        b.add(&format!("z{i}"), "D", &format!("y{i}"));
        // spurious C edge into the next diamond's sink
        b.add(&format!("e{i}"), "C", &format!("y{}", (i + 1) % n));
    }
    b.build()
}

fn bench_figure1(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure1_chain");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    for fan in [10usize, 40, 160] {
        let graph = figure1_scaled(fan);
        let query = parse_query(
            "SELECT * WHERE { ?w :A ?x . ?x :B ?y . ?y :C ?z . }",
            graph.dictionary(),
        )
        .expect("CQ_C parses");
        let wf = WireframeEngine::new(&graph);
        let rel = RelationalEngine::new(&graph);
        group.bench_with_input(BenchmarkId::new("wireframe_full", fan), &query, |b, q| {
            b.iter(|| wf.execute(q).expect("evaluates").embedding_count())
        });
        group.bench_with_input(
            BenchmarkId::new("wireframe_answer_graph_only", fan),
            &query,
            |b, q| b.iter(|| wf.answer_graph(q).expect("phase one runs").0.total_edges()),
        );
        group.bench_with_input(BenchmarkId::new("relational", fan), &query, |b, q| {
            b.iter(|| rel.evaluate(q).expect("evaluates").len())
        });
    }
    group.finish();
}

fn bench_figure4(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure4_diamond");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    for n in [16usize, 64, 256] {
        let graph = figure4_scaled(n);
        let query = parse_query(
            "SELECT * WHERE { ?x :A ?e . ?x :B ?z . ?e :C ?y . ?z :D ?y . }",
            graph.dictionary(),
        )
        .expect("CQ_D parses");
        let node_only = WireframeEngine::new(&graph);
        let edge_bb =
            WireframeEngine::with_options(&graph, EvalOptions::default().with_edge_burnback());
        group.bench_with_input(BenchmarkId::new("node_burnback_only", n), &query, |b, q| {
            b.iter(|| node_only.execute(q).expect("evaluates").answer_graph_size())
        });
        group.bench_with_input(BenchmarkId::new("with_edge_burnback", n), &query, |b, q| {
            b.iter(|| edge_bb.execute(q).expect("evaluates").answer_graph_size())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figure1, bench_figure4);
criterion_main!(benches);

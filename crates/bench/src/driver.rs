//! The `wfbench` closed-loop concurrent driver.
//!
//! Models the ROADMAP's serving scenario rather than the paper's one-query
//! prototype runs: one executor per engine over a shared graph, `threads`
//! worker threads issuing queries back-to-back (closed loop — a worker sends
//! its next query as soon as the previous answer returns), every worker
//! cycling through the whole workload from a different starting offset so
//! the prepared-plan cache serves a mix of repeated and distinct queries
//! under contention. The driver dispatches through
//! [`QueryExecutor`], so the same loop measures a single `Session` or a
//! `ShardedCluster`.
//!
//! Latency is measured per query from [`QueryExecutor::execute`] call to
//! return — cache lookup included, exactly what a serving client would see.
//! Phase breakdowns come from the engine's own [`Timings`]. Every answer's
//! embedding count is checked against the first answer seen for the same
//! query, so a throughput run doubles as a correctness soak test.

use std::time::Instant;

use wireframe::{QueryExecutor, Timings, WireframeError};
use wireframe_datagen::BenchmarkQuery;
use wireframe_query::Shape;

use crate::report::{EngineRun, PhaseBreakdown, QueryReport};

/// How one worker's measurements of one query are accumulated.
#[derive(Debug, Clone, Default)]
struct QueryAccumulator {
    latencies_ms: Vec<f64>,
    phase_sums: [f64; 6],
    embeddings: u64,
    answer_graph_edges: Option<u64>,
}

impl QueryAccumulator {
    fn record(&mut self, latency_ms: f64, timings: &Timings, embeddings: u64, ag: Option<u64>) {
        self.latencies_ms.push(latency_ms);
        let phases = [
            timings.planning,
            timings.answer_graph,
            timings.edge_burnback,
            timings.defactorization,
            timings.execution,
            // Worker cpu-sum, reported next to the wall-clock phase so
            // parallel defactorization's true cost stays visible.
            timings.defactorization_cpu,
        ];
        for (sum, phase) in self.phase_sums.iter_mut().zip(phases) {
            *sum += phase.as_secs_f64() * 1e3;
        }
        self.embeddings = embeddings;
        self.answer_graph_edges = ag;
    }

    fn merge(&mut self, other: QueryAccumulator) {
        self.latencies_ms.extend(other.latencies_ms);
        for (sum, add) in self.phase_sums.iter_mut().zip(other.phase_sums) {
            *sum += add;
        }
        self.embeddings = other.embeddings;
        self.answer_graph_edges = self.answer_graph_edges.or(other.answer_graph_edges);
    }
}

/// Nearest-rank percentile of an unsorted sample list (`p` in 0..=100).
/// Delegates to the shared implementation in the telemetry crate so the
/// bench driver and the metrics registry report identical quantiles.
pub use wireframe_api::obs::percentile_ms;

/// Nearest-rank percentile of an already ascending-sorted sample list, so
/// one sort serves every percentile of a query's report.
pub(crate) use wireframe_api::obs::percentile_sorted;

/// The workload-facing shape name used in reports.
pub fn shape_name(shape: Shape) -> &'static str {
    match shape {
        Shape::Chain => "chain",
        Shape::Star => "star",
        Shape::Snowflake => "snowflake",
        Shape::Tree => "tree",
        Shape::Cycle => "cycle",
        Shape::Cyclic => "cyclic",
    }
}

/// Runs the closed loop for one engine: `threads` workers, each making
/// `iterations` passes over `workload` (starting at a per-worker offset),
/// against one shared concurrent [`QueryExecutor`].
///
/// The executor must already have the target engine selected. Every answer's
/// embedding count is checked against the first answer seen for that query;
/// an engine disagreeing with itself across repetitions aborts the run.
pub fn run_engine(
    executor: &dyn QueryExecutor,
    workload: &[BenchmarkQuery],
    threads: usize,
    iterations: usize,
) -> Result<EngineRun, WireframeError> {
    let threads = threads.max(1);
    let iterations = iterations.max(1);

    // One warmup pass primes the prepared-plan cache and the allocator; the
    // measured loop then runs against a warm cache — steady-state serving.
    // Counters are reported as deltas so the warmup is excluded.
    for bq in workload {
        executor.execute(&bq.query)?;
    }
    let before = executor.stats();

    let wall_start = Instant::now();
    let per_thread: Result<Vec<Vec<QueryAccumulator>>, WireframeError> =
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for worker in 0..threads {
                type WorkerResult = Result<Vec<QueryAccumulator>, WireframeError>;
                handles.push(scope.spawn(move || -> WorkerResult {
                    let mut accs = vec![QueryAccumulator::default(); workload.len()];
                    for pass in 0..iterations {
                        for step in 0..workload.len() {
                            // Offset start per worker: at any instant the
                            // workers collectively issue a mix of identical
                            // and distinct queries.
                            let idx = (worker + pass + step) % workload.len();
                            let t = Instant::now();
                            let ev = executor.execute(&workload[idx].query)?;
                            let latency_ms = t.elapsed().as_secs_f64() * 1e3;
                            assert!(
                                accs[idx].latencies_ms.is_empty()
                                    || accs[idx].embeddings == ev.embedding_count() as u64,
                                "{}: engine answered {} then {} embeddings",
                                workload[idx].name,
                                accs[idx].embeddings,
                                ev.embedding_count()
                            );
                            accs[idx].record(
                                latency_ms,
                                &ev.timings,
                                ev.embedding_count() as u64,
                                ev.answer_graph_size().map(|n| n as u64),
                            );
                        }
                    }
                    Ok(accs)
                }));
            }
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(result) => result,
                    // A worker assertion (self-disagreeing engine) already
                    // printed its message; re-panic to fail the run loudly.
                    Err(panic) => std::panic::resume_unwind(panic),
                })
                .collect()
        });
    let per_thread = per_thread?;
    let wall_ms = wall_start.elapsed().as_secs_f64() * 1e3;

    let mut merged = vec![QueryAccumulator::default(); workload.len()];
    for accs in per_thread {
        for (into, from) in merged.iter_mut().zip(accs) {
            into.merge(from);
        }
    }

    let queries = workload
        .iter()
        .zip(&merged)
        .map(|(bq, acc)| {
            let samples = acc.latencies_ms.len();
            let mean_ms = acc.latencies_ms.iter().sum::<f64>() / samples.max(1) as f64;
            let scale = 1.0 / samples.max(1) as f64;
            let mut sorted = acc.latencies_ms.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
            QueryReport {
                name: bq.name.clone(),
                shape: shape_name(bq.shape).to_owned(),
                samples,
                p50_ms: percentile_sorted(&sorted, 50.0),
                p95_ms: percentile_sorted(&sorted, 95.0),
                p99_ms: percentile_sorted(&sorted, 99.0),
                mean_ms,
                phases: PhaseBreakdown {
                    planning_ms: acc.phase_sums[0] * scale,
                    answer_graph_ms: acc.phase_sums[1] * scale,
                    edge_burnback_ms: acc.phase_sums[2] * scale,
                    defactorization_ms: acc.phase_sums[3] * scale,
                    execution_ms: acc.phase_sums[4] * scale,
                    defactorization_cpu_ms: acc.phase_sums[5] * scale,
                },
                embeddings: acc.embeddings,
                answer_graph_edges: acc.answer_graph_edges,
                ag_over_embeddings: acc.answer_graph_edges.map(|ag| {
                    // |AG| / |Embeddings|: ≪ 1.0 is the paper's headline.
                    ag as f64 / acc.embeddings.max(1) as f64
                }),
            }
        })
        .collect();

    let total_queries = (threads * iterations * workload.len()) as u64;
    let after = executor.stats();
    Ok(EngineRun {
        engine: executor.engine_name().to_owned(),
        total_queries,
        wall_ms,
        qps: total_queries as f64 / (wall_ms / 1e3).max(1e-9),
        cache_hits: after.cache_hits - before.cache_hits,
        cache_misses: after.cache_misses - before.cache_misses,
        queries,
        churn: None,
        serve: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_dataset, DatasetSize};
    use std::sync::Arc;
    use wireframe::{Session, SessionConfig};
    use wireframe_datagen::full_workload;

    #[test]
    fn percentiles_follow_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile_ms(&samples, 50.0), 50.0);
        assert_eq!(percentile_ms(&samples, 95.0), 95.0);
        assert_eq!(percentile_ms(&samples, 99.0), 99.0);
        assert_eq!(percentile_ms(&samples, 100.0), 100.0);
        assert_eq!(percentile_ms(&[7.0], 50.0), 7.0);
        assert_eq!(percentile_ms(&[], 50.0), 0.0);
    }

    #[test]
    fn driver_measures_the_wireframe_engine_concurrently() {
        let graph = Arc::new(build_dataset(DatasetSize::Tiny));
        let workload = full_workload(&graph).unwrap();
        let session = Session::shared(Arc::clone(&graph));
        let run = run_engine(&session, &workload, 2, 2).unwrap();

        assert_eq!(run.engine, "wireframe");
        assert_eq!(run.total_queries, (2 * 2 * workload.len()) as u64);
        assert_eq!(
            run.cache_hits + run.cache_misses,
            run.total_queries,
            "every issued query is a cache hit or miss"
        );
        assert!(run.qps > 0.0 && run.wall_ms > 0.0);
        assert_eq!(run.queries.len(), workload.len());
        for q in &run.queries {
            assert_eq!(q.samples, 4, "threads × iterations samples per query");
            assert!(q.p50_ms > 0.0 && q.p50_ms <= q.p95_ms && q.p95_ms <= q.p99_ms);
            assert!(q.embeddings > 0, "{}: planted cores answer", q.name);
            let ag = q.answer_graph_edges.expect("wireframe factorizes");
            assert!(ag > 0);
            let ratio = q.ag_over_embeddings.unwrap();
            assert!((ratio - ag as f64 / q.embeddings as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn driver_reports_non_factorizing_engines_with_null_ag() {
        let graph = Arc::new(build_dataset(DatasetSize::Tiny));
        let workload = full_workload(&graph).unwrap();
        let workload = &workload[..3];
        let session = Session::from_config(
            Arc::clone(&graph),
            SessionConfig::new().engine("exploration"),
        )
        .unwrap();
        let run = run_engine(&session, workload, 1, 1).unwrap();
        assert_eq!(run.engine, "exploration");
        for q in &run.queries {
            assert!(q.answer_graph_edges.is_none());
            assert!(q.ag_over_embeddings.is_none());
            assert!(
                q.phases.execution_ms > 0.0,
                "single-pass engines report execution"
            );
        }
    }
}

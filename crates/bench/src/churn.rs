//! The `wfbench --scenario churn` closed-loop driver: dynamic-graph serving
//! under a mixed read/update workload.
//!
//! The serve scenario ([`crate::driver::run_engine`]) measures a static
//! graph. This driver measures the ROADMAP's *live* scenario: the graph
//! keeps changing while queries are served. Each measured **epoch** applies
//! one seeded mutation batch through [`QueryExecutor::apply_mutation`]
//! (advancing the epoch, invalidating cached plans by predicate footprint, and
//! possibly compacting the delta store) and then runs the closed-loop read
//! workload against the new version, recording per-epoch QPS and the deltas
//! of every cache/compaction counter.
//!
//! The update mix is deterministic (seeded shim PRNG) and targets only
//! predicates with **even** identifiers — so queries over odd predicates
//! must keep their cached plans across every epoch, which makes the
//! reported hit/invalidation counters a footprint-correctness signal, not
//! just load numbers. Within an epoch every query's embedding count must be
//! stable and every evaluation must carry the epoch's stamp; both are
//! asserted, so a churn run doubles as a consistency soak test.

use std::collections::HashSet;
use std::sync::OnceLock;
use std::time::Instant;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use wireframe::{ExecutorStats, Mutation, QueryExecutor, WireframeError};
use wireframe_datagen::BenchmarkQuery;
use wireframe_graph::Graph;

use crate::driver::percentile_sorted;
use crate::report::{ChurnReport, EngineRun, EpochReport, TopKReport};

/// Configuration of one churn run.
#[derive(Debug, Clone, Copy)]
pub struct ChurnOptions {
    /// Measured epochs (mutation batch + read phase each).
    pub epochs: usize,
    /// Mutation operations per batch.
    pub batch: usize,
    /// Fraction of each batch that are insertions (the rest are removals).
    pub insert_fraction: f64,
    /// Closed-loop reader threads.
    pub threads: usize,
    /// Workload passes per thread per epoch.
    pub iterations: usize,
    /// PRNG seed for the update mix (same seed → same mutation sequence).
    pub seed: u64,
    /// Row cap pushed into every read (`0` = unlimited). A non-zero limit
    /// turns the run into the top-k serving lane: reads that a maintained
    /// prefix answers in `O(limit)` and reads that pay a full
    /// defactorization are timed separately, reported as
    /// [`TopKReport`].
    pub limit: usize,
}

impl Default for ChurnOptions {
    fn default() -> Self {
        ChurnOptions {
            epochs: 4,
            batch: 64,
            insert_fraction: 0.6,
            threads: 1,
            iterations: 2,
            seed: 0xC0FFEE,
            limit: 0,
        }
    }
}

/// How many node labels the update generator samples as endpoints.
const NODE_POOL: usize = 4096;

/// The seeded update-mix generator: tracks the live triples of the mutable
/// (even-identifier) predicates so removals always target present triples
/// and re-insertions can revive removed ones.
struct ChurnMix {
    rng: SmallRng,
    /// Live `(s, p, o)` labels over mutable predicates (insertion mirror;
    /// duplicate-free — `present` guards every push), indexable for random
    /// removal sampling.
    live: Vec<(String, String, String)>,
    /// Membership view of `live`, so re-sampling an already-present triple
    /// cannot create duplicate mirror entries.
    present: HashSet<(String, String, String)>,
    /// Labels of the even-identifier predicates the mix is allowed to touch.
    predicates: Vec<String>,
    /// Sampled node labels used as edge endpoints.
    nodes: Vec<String>,
    /// Counter for fresh `churn_n*` node labels.
    fresh: usize,
}

impl ChurnMix {
    fn new(graph: &Graph, seed: u64) -> Self {
        let dict = graph.dictionary();
        let predicates: Vec<String> = dict
            .predicates()
            .filter(|(p, _)| p.index() % 2 == 0)
            .map(|(_, label)| label.to_owned())
            .collect();
        let live: Vec<(String, String, String)> = graph
            .triples()
            .filter(|t| t.predicate.index() % 2 == 0)
            .map(|t| {
                (
                    dict.node_label(t.subject).unwrap_or("?").to_owned(),
                    dict.predicate_label(t.predicate).unwrap_or("?").to_owned(),
                    dict.node_label(t.object).unwrap_or("?").to_owned(),
                )
            })
            .collect();
        let nodes: Vec<String> = (0..graph.node_count().min(NODE_POOL))
            .map(|i| {
                dict.node_label(wireframe_graph::NodeId(i as u32))
                    .unwrap_or("?")
                    .to_owned()
            })
            .collect();
        let present: HashSet<(String, String, String)> = live.iter().cloned().collect();
        ChurnMix {
            rng: SmallRng::seed_from_u64(seed),
            live,
            present,
            predicates,
            nodes,
            fresh: 0,
        }
    }

    /// Whether the graph has any mutable predicate to churn.
    fn is_empty(&self) -> bool {
        self.predicates.is_empty() || self.nodes.is_empty()
    }

    fn batch(&mut self, size: usize, insert_fraction: f64) -> Mutation {
        let mut mutation = Mutation::new();
        if self.is_empty() {
            return mutation;
        }
        for _ in 0..size {
            let insert = self.live.is_empty() || self.rng.gen_range(0.0..1.0) < insert_fraction;
            if insert {
                let p = self.predicates[self.rng.gen_range(0..self.predicates.len())].clone();
                let s = if self.rng.gen_range(0..4usize) == 0 {
                    // A quarter of the inserts grow the node space.
                    self.fresh += 1;
                    format!("churn_n{}", self.fresh)
                } else {
                    self.nodes[self.rng.gen_range(0..self.nodes.len())].clone()
                };
                let o = self.nodes[self.rng.gen_range(0..self.nodes.len())].clone();
                mutation = mutation.insert(&s, &p, &o);
                // Re-sampling a present triple is a no-op insert: emit the
                // op (set semantics absorb it) but keep the mirror
                // duplicate-free so removals always target present triples.
                if self.present.insert((s.clone(), p.clone(), o.clone())) {
                    self.live.push((s, p, o));
                }
            } else {
                let idx = self.rng.gen_range(0..self.live.len());
                let (s, p, o) = self.live.swap_remove(idx);
                self.present.remove(&(s.clone(), p.clone(), o.clone()));
                mutation = mutation.remove(&s, &p, &o);
            }
        }
        mutation
    }
}

/// Per-read view-serve latencies of one epoch's read phase, microseconds,
/// split by serving path. Both buckets stay empty on unlimited runs.
#[derive(Debug, Default)]
struct ServeSamples {
    /// Reads answered from a retained top-k prefix in `O(limit)`.
    prefix_us: Vec<f64>,
    /// Reads that paid a (possibly truncated) full defactorization.
    full_us: Vec<f64>,
}

impl ServeSamples {
    fn absorb(&mut self, mut other: ServeSamples) {
        self.prefix_us.append(&mut other.prefix_us);
        self.full_us.append(&mut other.full_us);
    }
}

/// One epoch's closed-loop read phase: `threads` workers × `iterations`
/// passes over `workload`, each read capped at `limit` rows (`0` =
/// unlimited). Asserts intra-epoch answer stability and correct epoch
/// stamping; returns `(wall_ms, queries_issued, samples)`.
fn read_phase(
    executor: &dyn QueryExecutor,
    workload: &[BenchmarkQuery],
    threads: usize,
    iterations: usize,
    limit: usize,
) -> Result<(f64, u64, ServeSamples), WireframeError> {
    let epoch = executor.epoch();
    let expected: Vec<OnceLock<u64>> = workload.iter().map(|_| OnceLock::new()).collect();
    let start = Instant::now();
    let result: Result<Vec<ServeSamples>, WireframeError> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for worker in 0..threads {
            let expected = &expected;
            handles.push(
                scope.spawn(move || -> Result<ServeSamples, WireframeError> {
                    let mut samples = ServeSamples::default();
                    for pass in 0..iterations {
                        for step in 0..workload.len() {
                            let idx = (worker + pass + step) % workload.len();
                            let read_start = Instant::now();
                            let ev = executor.execute_limited(&workload[idx].query, limit)?;
                            let read_us = read_start.elapsed().as_secs_f64() * 1e6;
                            if limit > 0 {
                                if ev.limited.as_ref().is_some_and(|i| i.prefix_served) {
                                    samples.prefix_us.push(read_us);
                                } else {
                                    samples.full_us.push(read_us);
                                }
                            }
                            assert_eq!(
                                ev.epoch(),
                                epoch,
                                "{}: mutations must not run during a read phase",
                                workload[idx].name
                            );
                            let count = ev.embedding_count() as u64;
                            let first = *expected[idx].get_or_init(|| count);
                            assert_eq!(
                                first, count,
                                "{}: answers must be stable within an epoch",
                                workload[idx].name
                            );
                        }
                    }
                    Ok(samples)
                }),
            );
        }
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(result) => result,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    });
    let per_thread = result?;
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let mut samples = ServeSamples::default();
    for thread_samples in per_thread {
        samples.absorb(thread_samples);
    }
    Ok((
        wall_ms,
        (threads * iterations * workload.len()) as u64,
        samples,
    ))
}

/// Assembles the top-k lane section from the run's latency buckets and
/// whole-run counter deltas; `None` on unlimited runs.
fn build_topk(
    limit: usize,
    mut samples: ServeSamples,
    run_start: &ExecutorStats,
    after: &ExecutorStats,
) -> Option<TopKReport> {
    if limit == 0 {
        return None;
    }
    let finite = |a: &f64, b: &f64| a.partial_cmp(b).expect("latencies are finite");
    samples.prefix_us.sort_by(finite);
    samples.full_us.sort_by(finite);
    Some(TopKReport {
        limit: limit as u64,
        prefix_serves: samples.prefix_us.len() as u64,
        full_serves: samples.full_us.len() as u64,
        prefix_refills: after.prefix_refills - run_start.prefix_refills,
        prefix_fallbacks: after.prefix_fallbacks - run_start.prefix_fallbacks,
        prefix_p50_us: percentile_sorted(&samples.prefix_us, 50.0),
        prefix_p99_us: percentile_sorted(&samples.prefix_us, 99.0),
        full_p50_us: percentile_sorted(&samples.full_us, 50.0),
        full_p99_us: percentile_sorted(&samples.full_us, 99.0),
    })
}

/// Runs the churn scenario for one executor: a cache-priming warmup
/// pass, then `opts.epochs` rounds of (seeded mutation batch → closed-loop
/// reads), reporting per-epoch QPS and counter deltas.
///
/// The executor must have the target engine selected; any storage backend
/// works, but only [`StoreKind::Delta`](wireframe_graph::StoreKind) makes
/// mutations cheap (and reports compactions).
pub fn run_churn(
    executor: &dyn QueryExecutor,
    workload: &[BenchmarkQuery],
    opts: &ChurnOptions,
) -> Result<EngineRun, WireframeError> {
    let threads = opts.threads.max(1);
    let iterations = opts.iterations.max(1);
    let limit = opts.limit;
    let mut mix = ChurnMix::new(&executor.graph(), opts.seed);

    // Warmup: prime the prepared-plan cache so the first epoch's
    // invalidation counters measure footprint eviction, not a cold cache.
    // With a limit the warmup reads are limited too, so retained views
    // enter the first epoch with warm top-k prefixes (the priming cost
    // lands in the run's `prefix_refills`, not in any epoch's numbers).
    let run_start = executor.stats();
    for bq in workload {
        executor.execute_limited(&bq.query, limit)?;
    }
    let before = executor.stats();

    let mut epochs = Vec::with_capacity(opts.epochs);
    let mut total_queries = 0u64;
    let mut samples = ServeSamples::default();
    let wall_start = Instant::now();
    for _ in 0..opts.epochs {
        let s0 = executor.stats();

        let mutation = mix.batch(opts.batch, opts.insert_fraction);
        let outcome = executor.apply_mutation(&mutation);
        let (wall_ms, queries, epoch_samples) =
            read_phase(executor, workload, threads, iterations, limit)?;
        total_queries += queries;
        samples.absorb(epoch_samples);

        let s1 = executor.stats();
        epochs.push(EpochReport {
            epoch: executor.epoch(),
            wall_ms,
            queries,
            qps: queries as f64 / (wall_ms / 1e3).max(1e-9),
            inserted: outcome.inserted as u64,
            removed: outcome.removed as u64,
            invalidations: s1.cache_invalidations - s0.cache_invalidations,
            evictions: s1.cache_evictions - s0.cache_evictions,
            compactions: s1.compactions - s0.compactions,
            cache_hits: s1.cache_hits - s0.cache_hits,
            cache_misses: s1.cache_misses - s0.cache_misses,
            maintained: s1.plans_maintained - s0.plans_maintained,
            maintenance_us: s1.maintenance_micros - s0.maintenance_micros,
            frontier_nodes: s1.maintenance_frontier_nodes - s0.maintenance_frontier_nodes,
        });

        if limit > 0 {
            // Comparison sweep: the same workload once, unlimited, so the
            // full bucket holds serves that defactorize the whole view over
            // the same graph version. Runs after the `s1` capture so the
            // per-epoch counter deltas stay limited-read-only.
            for bq in workload {
                let sweep_start = Instant::now();
                executor.execute(&bq.query)?;
                samples
                    .full_us
                    .push(sweep_start.elapsed().as_secs_f64() * 1e6);
            }
        }
    }
    let wall_ms = wall_start.elapsed().as_secs_f64() * 1e3;

    let after = executor.stats();
    let topk = build_topk(limit, samples, &run_start, &after);
    let churn = ChurnReport {
        final_epoch: executor.epoch(),
        total_mutations: epochs.iter().map(|e| e.inserted + e.removed).sum(),
        total_invalidations: epochs.iter().map(|e| e.invalidations).sum(),
        total_compactions: epochs.iter().map(|e| e.compactions).sum(),
        total_maintained: Some(epochs.iter().map(|e| e.maintained).sum()),
        // Delta over this run (warmup included): an executor with prior
        // activity must not inflate the churn run's own pipeline count.
        total_full_evaluations: Some(after.full_evaluations - run_start.full_evaluations),
        topk,
        epochs,
    };
    Ok(EngineRun {
        engine: executor.engine_name().to_owned(),
        total_queries,
        wall_ms,
        qps: total_queries as f64 / (wall_ms / 1e3).max(1e-9),
        cache_hits: after.cache_hits - before.cache_hits,
        cache_misses: after.cache_misses - before.cache_misses,
        queries: Vec::new(),
        churn: Some(churn),
        serve: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_dataset_with_store, DatasetSize};
    use std::sync::Arc;
    use wireframe::Session;
    use wireframe_datagen::full_workload;
    use wireframe_graph::StoreKind;

    fn run(seed: u64) -> EngineRun {
        let graph = Arc::new(
            build_dataset_with_store(DatasetSize::Tiny, StoreKind::Delta)
                .with_compaction_threshold(0.01),
        );
        let workload = full_workload(&graph).unwrap();
        let session = Session::shared(graph);
        let opts = ChurnOptions {
            epochs: 3,
            batch: 48,
            threads: 2,
            iterations: 1,
            seed,
            ..ChurnOptions::default()
        };
        run_churn(&session, &workload, &opts).unwrap()
    }

    #[test]
    fn churn_reports_epochs_mutations_and_counters() {
        let run = run(7);
        let churn = run.churn.as_ref().expect("churn scenario reports churn");
        assert_eq!(churn.epochs.len(), 3);
        assert_eq!(churn.final_epoch, 3);
        assert!(churn.total_mutations > 0, "batches actually mutate");
        assert!(
            churn.total_compactions >= 1,
            "threshold 0.01 forces compaction"
        );
        assert!(run.total_queries > 0 && run.qps > 0.0);
        assert!(
            run.queries.is_empty(),
            "churn reports per epoch, not per query"
        );
        for (i, e) in churn.epochs.iter().enumerate() {
            assert_eq!(e.epoch, i as u64 + 1, "one session epoch per batch");
            assert!(e.qps > 0.0 && e.wall_ms > 0.0);
            assert_eq!(e.queries, 2 * full_len() as u64);
            assert_eq!(
                e.cache_hits + e.cache_misses,
                e.queries,
                "every read is a hit or a miss"
            );
        }
    }

    fn full_len() -> usize {
        20 // the full workload: 10 snowflake + 10 diamond queries
    }

    /// The tentpole acceptance bound: on the seeded churn scenario
    /// (benchmark size, even-predicate batches), incremental maintenance
    /// performs at least 2× fewer full pipeline runs than evict-and-reeval
    /// while answering identically.
    #[test]
    fn incremental_maintenance_beats_evict_and_reeval() {
        let graph = Arc::new(build_dataset_with_store(
            DatasetSize::Benchmark,
            StoreKind::Delta,
        ));
        let workload = full_workload(&graph).unwrap();
        let opts = ChurnOptions {
            epochs: 3,
            batch: 64,
            threads: 1,
            iterations: 1,
            seed: 0xFEED,
            ..ChurnOptions::default()
        };

        let incremental = Session::shared(Arc::clone(&graph));
        assert!(incremental.maintenance_enabled(), "incremental is default");
        let inc_run = run_churn(&incremental, &workload, &opts).unwrap();
        let reeval = Session::from_config(
            Arc::clone(&graph),
            wireframe::SessionConfig::new().maintenance(false),
        )
        .unwrap();
        let re_run = run_churn(&reeval, &workload, &opts).unwrap();

        // Equal answers: the seeded mix is identical, so after the final
        // epoch both sessions must answer the whole workload identically.
        for bq in &workload {
            assert_eq!(
                incremental.execute(&bq.query).unwrap().embedding_count(),
                reeval.execute(&bq.query).unwrap().embedding_count(),
                "{}: the policies must agree on the answer",
                bq.name
            );
        }

        let inc_churn = inc_run.churn.as_ref().unwrap();
        let re_churn = re_run.churn.as_ref().unwrap();
        let inc_full = inc_churn.total_full_evaluations.unwrap();
        let re_full = re_churn.total_full_evaluations.unwrap();
        assert!(
            inc_full * 2 <= re_full,
            "incremental ran {inc_full} full pipelines, reeval {re_full}: \
             the ≥2× bound failed"
        );
        assert!(
            inc_churn.total_maintained.unwrap() > 0,
            "the even-predicate batches must maintain cached views"
        );
        assert_eq!(
            re_churn.total_maintained.unwrap(),
            0,
            "reeval never maintains"
        );
        assert_eq!(inc_churn.total_invalidations, 0, "nothing evicted");
        assert!(re_churn.total_invalidations > 0, "reeval evicts instead");
        assert!(
            inc_churn.epochs.iter().all(|e| e.maintained > 0),
            "every epoch's batch maintains the intersecting views"
        );
        assert!(
            inc_churn
                .epochs
                .iter()
                .map(|e| e.maintenance_us)
                .sum::<u64>()
                > 0,
            "maintenance cost is measured"
        );
        assert_eq!(
            inc_churn.total_mutations, re_churn.total_mutations,
            "the seeded update mix is policy-independent"
        );
    }

    #[test]
    fn unlimited_runs_skip_topk_and_limited_runs_classify_every_read() {
        let unlimited = run(7);
        assert!(
            unlimited.churn.unwrap().topk.is_none(),
            "no limit, no top-k lane"
        );

        let graph = Arc::new(build_dataset_with_store(
            DatasetSize::Tiny,
            StoreKind::Delta,
        ));
        let workload = full_workload(&graph).unwrap();
        let session = Session::shared(graph);
        let opts = ChurnOptions {
            epochs: 2,
            batch: 32,
            threads: 2,
            iterations: 1,
            seed: 9,
            limit: 4,
            ..ChurnOptions::default()
        };
        let run = run_churn(&session, &workload, &opts).unwrap();
        let topk = run.churn.unwrap().topk.expect("limited runs report topk");
        assert_eq!(topk.limit, 4);
        // Every limited read lands in exactly one bucket, and each epoch's
        // unlimited comparison sweep adds one full sample per query.
        let sweep = (opts.epochs * workload.len()) as u64;
        assert_eq!(
            topk.prefix_serves + topk.full_serves,
            run.total_queries + sweep
        );
        assert!(
            topk.prefix_serves > 0,
            "acyclic full-projection views serve from their prefixes"
        );
        assert!(
            topk.full_serves >= sweep,
            "the sweep alone guarantees full-bucket samples"
        );
        assert!(
            topk.prefix_refills > 0,
            "warmup priming and churn refills are visible in the report"
        );
        assert!(topk.prefix_p50_us > 0.0 && topk.full_p50_us > 0.0);
        assert!(topk.prefix_p50_us <= topk.prefix_p99_us);
        assert!(topk.full_p50_us <= topk.full_p99_us);
    }

    /// The top-k acceptance bound: at benchmark size, prefix-served reads
    /// are at least 5× faster (p50 view-serve latency) than reads that pay
    /// a full defactorization of the same retained views.
    #[test]
    fn prefix_serving_beats_full_defactorization_5x() {
        let graph = Arc::new(build_dataset_with_store(
            DatasetSize::Benchmark,
            StoreKind::Delta,
        ));
        let workload = full_workload(&graph).unwrap();
        let session = Session::shared(graph);
        let opts = ChurnOptions {
            epochs: 3,
            batch: 64,
            threads: 1,
            iterations: 2,
            seed: 0xBEEF,
            limit: 8,
            ..ChurnOptions::default()
        };
        let run = run_churn(&session, &workload, &opts).unwrap();
        let topk = run.churn.unwrap().topk.expect("limited runs report topk");
        assert!(topk.prefix_serves > 0 && topk.full_serves > 0);
        assert!(
            topk.prefix_p50_us * 5.0 <= topk.full_p50_us,
            "prefix p50 {:.1}µs vs full p50 {:.1}µs: the ≥5× bound failed",
            topk.prefix_p50_us,
            topk.full_p50_us
        );
    }

    #[test]
    fn churn_is_deterministic_per_seed_and_respects_footprints() {
        let a = run(42);
        let b = run(42);
        let (ca, cb) = (a.churn.unwrap(), b.churn.unwrap());
        assert_eq!(ca.total_mutations, cb.total_mutations);
        assert_eq!(ca.total_invalidations, cb.total_invalidations);
        assert_eq!(ca.total_compactions, cb.total_compactions);
        // The mix only touches even-identifier predicates, so some cached
        // plans (odd-predicate queries) must survive every epoch: the reads
        // can never be all-miss.
        for e in &ca.epochs {
            assert!(
                e.cache_hits > 0,
                "footprint invalidation keeps untouched plans hot"
            );
        }
    }
}

//! The `wfbench --scenario serve-net` closed-loop network lane: N client
//! threads over real TCP sockets against a [`wireframe_serve::Server`],
//! issuing a seeded mix of reads and mutation scripts, with one subscriber
//! folding pushed embedding deltas on the side.
//!
//! Where the in-process drivers ([`crate::driver`], [`crate::churn`])
//! measure the engine, this lane measures the *system*: framing, admission
//! control, write batching and subscription fan-out all sit on the measured
//! path, so the report's percentiles are end-to-end request latencies as a
//! network client sees them — including p999, where queueing and batch
//! windows live.
//!
//! Correctness is asserted while measuring:
//!
//! * every response's epoch is monotone per connection,
//! * the subscriber's update chain is gap-free (`update.prev_epoch` equals
//!   the last seen epoch — a lost or reordered update panics the lane),
//! * the subscriber reaches the final epoch before the server shuts down.
//!
//! The traffic mix is deterministic given the seed: each client decides
//! read-vs-write from its own PRNG stream, so the reported `queries` /
//! `mutations` split is reproducible and compared exactly against
//! baselines. *Which* requests get shed under overload is timing-dependent
//! and only observed, never compared.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use wireframe::QueryExecutor;
use wireframe_datagen::BenchmarkQuery;
use wireframe_graph::NodeId;
use wireframe_query::to_sparql;
use wireframe_serve::{Client, ClientError, ServeConfig, Server};

use crate::driver::percentile_sorted;
use crate::report::{EngineRun, ServeReport};

/// Configuration of one serve-net run.
#[derive(Debug, Clone)]
pub struct ServeNetOptions {
    /// Closed-loop TCP client threads.
    pub clients: usize,
    /// Requests issued per client.
    pub requests: usize,
    /// Probability that a request is a mutation script (the rest are
    /// reads), drawn per request from the client's seeded PRNG.
    pub write_fraction: f64,
    /// PRNG seed; the per-client streams derive from it, so the same seed
    /// reproduces the same read/write split and mutation contents.
    pub seed: u64,
    /// Row cap sent with every read (keeps response frames small; the
    /// server still evaluates and reports the full count).
    pub limit: u64,
    /// Server knobs (worker pool, queue depth, deadline, batch window).
    /// Shrinking `queue_depth` induces overload for shed-path testing.
    pub config: ServeConfig,
    /// Telemetry switch for the A/B overhead measurement: `false` runs the
    /// identical lane with histograms and span sampling off
    /// (`--scenario serve-net --obs off`).
    pub obs: bool,
    /// When set, scrape the server's Prometheus endpoint right before
    /// shutdown and write the text to this path (`--metrics-out`).
    pub metrics_out: Option<String>,
}

impl Default for ServeNetOptions {
    fn default() -> Self {
        ServeNetOptions {
            clients: 4,
            requests: 100,
            write_fraction: 0.2,
            seed: 0xC0FFEE,
            limit: 16,
            config: ServeConfig::default(),
            obs: true,
            metrics_out: None,
        }
    }
}

/// How many node labels are sampled as mutation endpoints.
const NODE_POOL: usize = 1024;

/// One step of a client's pre-generated program.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Action {
    /// Issue the workload query with this index (as rendered SPARQL text).
    Read(usize),
    /// Apply this mutation script.
    Write(String),
}

/// Generates client `c`'s whole request program up front from its own PRNG
/// stream — determinism is structural: the program depends only on the
/// seed, never on timing, so the run's `queries`/`mutations` split is
/// exactly reproducible. Writes stay in the client's namespace
/// (`net_c{c}_n{i}` subjects), so the final graph state is independent of
/// how the server interleaved or coalesced the clients' batches.
fn client_program(
    c: usize,
    requests: usize,
    texts_len: usize,
    predicates: &[String],
    nodes: &[String],
    opts: &ServeNetOptions,
) -> Vec<Action> {
    let mut rng =
        SmallRng::seed_from_u64(opts.seed ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut program = Vec::with_capacity(requests);
    let mut writes = 0usize;
    let mut last_insert: Option<String> = None;
    for k in 0..requests {
        if rng.gen_range(0.0..1.0) < opts.write_fraction {
            // Every fourth write removes the previous insert, so removal
            // and re-maintenance traffic stays on the measured path.
            let script = match last_insert.take_if(|_| writes % 4 == 3) {
                Some(insert) => format!("-{}", &insert[1..]),
                None => {
                    let p = &predicates[rng.gen_range(0..predicates.len())];
                    let o = &nodes[rng.gen_range(0..nodes.len())];
                    let script = format!("+ net_c{c}_n{writes} {p} {o}\n");
                    last_insert = Some(script.clone());
                    script
                }
            };
            writes += 1;
            program.push(Action::Write(script));
        } else {
            program.push(Action::Read((c + k) % texts_len));
        }
    }
    program
}

/// How long the subscriber may lag behind the final epoch before the lane
/// declares updates lost.
const CATCH_UP_DEADLINE: Duration = Duration::from_secs(30);

/// What one client thread measured.
#[derive(Debug, Default)]
struct ClientOutcome {
    latencies_ms: Vec<f64>,
    queries: u64,
    mutations: u64,
    shed: u64,
}

/// What the subscriber thread observed.
#[derive(Debug, Default)]
struct SubscriberOutcome {
    updates: u64,
    max_lag_epochs: u64,
}

/// Runs the serve-net lane for one executor: starts a server on an
/// ephemeral local port, drives it with `opts.clients` closed-loop TCP
/// clients plus one subscriber, then drains and gracefully shuts the
/// server down.
///
/// The executor must already have the target engine selected. Panics (via
/// the worker threads) if any response's epoch regresses on a connection
/// or the subscription update chain has a gap — the lane is a correctness
/// soak test as much as a latency benchmark.
pub fn run_serve_net(
    executor: &Arc<dyn QueryExecutor>,
    workload: &[BenchmarkQuery],
    opts: &ServeNetOptions,
) -> Result<EngineRun, String> {
    let clients = opts.clients.max(1);
    let requests = opts.requests.max(1);

    let (texts, predicates, nodes) = {
        let graph = executor.graph();
        let dict = graph.dictionary();
        let texts: Vec<String> = workload
            .iter()
            .map(|bq| to_sparql(&bq.query, dict))
            .collect();
        let predicates: Vec<String> = dict
            .predicates()
            .map(|(_, label)| label.to_owned())
            .collect();
        let nodes: Vec<String> = (0..graph.node_count().min(NODE_POOL))
            .map(|i| dict.node_label(NodeId(i as u32)).unwrap_or("?").to_owned())
            .collect();
        (texts, predicates, nodes)
    };
    if texts.is_empty() {
        return Err("serve-net needs a non-empty workload".to_owned());
    }
    if predicates.is_empty() || nodes.is_empty() {
        return Err("serve-net needs a non-empty graph".to_owned());
    }
    let programs: Vec<Vec<Action>> = (0..clients)
        .map(|c| client_program(c, requests, texts.len(), &predicates, &nodes, opts))
        .collect();

    // Warmup outside the measured window: prime the prepared-plan cache so
    // the lane measures steady-state serving, mirroring the other drivers.
    for bq in workload {
        executor.execute(&bq.query).map_err(|e| e.to_string())?;
    }
    let before = executor.stats();

    let mut config = opts.config.clone();
    config.obs = opts.obs;
    if opts.metrics_out.is_some() && config.metrics_addr.is_none() {
        config.metrics_addr = Some("127.0.0.1:0".to_owned());
    }
    let server = Server::start(Arc::clone(executor), "127.0.0.1:0", config)
        .map_err(|e| format!("cannot bind the serve-net server: {e}"))?;
    let addr = server.local_addr();

    // Subscribe before any traffic so the delta chain starts at the
    // current epoch and every subsequent advance must be covered.
    let mut subscriber =
        Client::connect(addr).map_err(|e| format!("subscriber cannot connect: {e}"))?;
    let (snapshot_epoch, _snapshot) = subscriber
        .subscribe(&texts[0], opts.limit)
        .map_err(|e| format!("subscribe failed: {e}"))?;

    // 0 = clients still running; the real target epoch (+1, so epoch 0 is
    // representable) is published once the writers have drained.
    let target_epoch = Arc::new(AtomicU64::new(0));

    let wall_start = Instant::now();
    let (outcomes, observed) = std::thread::scope(|scope| {
        let subscriber_handle = {
            let executor = Arc::clone(executor);
            let target_epoch = Arc::clone(&target_epoch);
            scope.spawn(move || -> Result<SubscriberOutcome, String> {
                run_subscriber(&mut subscriber, &*executor, &target_epoch, snapshot_epoch)
            })
        };

        let mut handles = Vec::with_capacity(clients);
        for (c, program) in programs.iter().enumerate() {
            let texts = &texts;
            let limit = opts.limit;
            handles.push(scope.spawn(move || -> Result<ClientOutcome, String> {
                run_client(addr, c, program, texts, limit)
            }));
        }
        let outcomes: Result<Vec<ClientOutcome>, String> = handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(outcome) => outcome,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect();

        // All mutate acks are in, so the executor epoch is final; let the
        // subscriber catch up to it before the server drains.
        target_epoch.store(executor.epoch() + 1, Ordering::Release);
        let observed = match subscriber_handle.join() {
            Ok(result) => result,
            Err(panic) => std::panic::resume_unwind(panic),
        };
        (outcomes, observed)
    });
    let outcomes = outcomes?;
    let observed = observed?;
    let wall_ms = wall_start.elapsed().as_secs_f64() * 1e3;

    let final_epoch = executor.epoch();
    let stats = server.stats();
    if let Some(path) = &opts.metrics_out {
        let scrape_addr = server
            .metrics_local_addr()
            .expect("metrics_out forces a metrics listener");
        let body = scrape_metrics(scrape_addr)?;
        std::fs::write(path, body).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    server.shutdown();

    let mut latencies: Vec<f64> = outcomes
        .iter()
        .flat_map(|o| o.latencies_ms.iter().copied())
        .collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let queries: u64 = outcomes.iter().map(|o| o.queries).sum();
    let mutations: u64 = outcomes.iter().map(|o| o.mutations).sum();
    let shed: u64 = outcomes.iter().map(|o| o.shed).sum();
    let total_requests = queries + mutations;

    let serve = ServeReport {
        clients: clients as u64,
        requests: total_requests,
        queries,
        mutations,
        shed,
        shed_rate: shed as f64 / total_requests.max(1) as f64,
        p50_ms: percentile_sorted(&latencies, 50.0),
        p95_ms: percentile_sorted(&latencies, 95.0),
        p99_ms: percentile_sorted(&latencies, 99.0),
        p999_ms: percentile_sorted(&latencies, 99.9),
        mutation_batches: stats.mutation_batches,
        coalesced_mutations: stats.coalesced_mutations,
        subscription_updates: observed.updates,
        subscription_lag_epochs: observed.max_lag_epochs,
        final_epoch,
        obs: opts.obs,
    };
    let after = executor.stats();
    Ok(EngineRun {
        engine: executor.engine_name().to_owned(),
        total_queries: total_requests,
        wall_ms,
        qps: total_requests as f64 / (wall_ms / 1e3).max(1e-9),
        cache_hits: after.cache_hits - before.cache_hits,
        cache_misses: after.cache_misses - before.cache_misses,
        queries: Vec::new(),
        churn: None,
        serve: Some(serve),
    })
}

/// One HTTP GET against the server's Prometheus endpoint, returning the
/// rendered text body (`--metrics-out` snapshots the end-of-run state).
fn scrape_metrics(addr: std::net::SocketAddr) -> Result<String, String> {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr)
        .map_err(|e| format!("cannot connect to the metrics endpoint: {e}"))?;
    stream
        .write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
        .map_err(|e| format!("metrics request failed: {e}"))?;
    let mut text = String::new();
    stream
        .read_to_string(&mut text)
        .map_err(|e| format!("metrics read failed: {e}"))?;
    text.split_once("\r\n\r\n")
        .map(|(_, body)| body.to_owned())
        .ok_or_else(|| "metrics response is not HTTP".to_owned())
}

/// One closed-loop client: executes its pre-generated program back-to-back
/// over one connection, measuring per-request latency and asserting
/// per-connection epoch monotonicity on every response. Shed requests
/// count toward the shed total but contribute no latency sample.
fn run_client(
    addr: std::net::SocketAddr,
    c: usize,
    program: &[Action],
    texts: &[String],
    limit: u64,
) -> Result<ClientOutcome, String> {
    let mut client =
        Client::connect(addr).map_err(|e| format!("client {c} cannot connect: {e}"))?;
    let mut outcome = ClientOutcome::default();
    let mut last_epoch = 0u64;
    for action in program {
        let start = Instant::now();
        let answered = match action {
            Action::Write(script) => {
                outcome.mutations += 1;
                client.mutate(script).map(|ack| ack.epoch)
            }
            Action::Read(idx) => {
                outcome.queries += 1;
                client.query(&texts[*idx], limit).map(|answer| answer.epoch)
            }
        };
        match answered {
            Ok(epoch) => {
                assert!(
                    epoch >= last_epoch,
                    "client {c}: epoch went backwards ({epoch} after {last_epoch})"
                );
                last_epoch = epoch;
                outcome
                    .latencies_ms
                    .push(start.elapsed().as_secs_f64() * 1e3);
            }
            Err(ClientError::Overloaded(_)) => outcome.shed += 1,
            Err(e) => return Err(format!("client {c} request failed: {e}")),
        }
    }
    Ok(outcome)
}

/// Folds pushed updates until the published target epoch is reached,
/// asserting the chain is gap-free and recording the worst staleness.
fn run_subscriber(
    subscriber: &mut Client,
    executor: &dyn QueryExecutor,
    target_epoch: &AtomicU64,
    snapshot_epoch: u64,
) -> Result<SubscriberOutcome, String> {
    let mut observed = SubscriberOutcome::default();
    let mut last_epoch = snapshot_epoch;
    let mut deadline: Option<Instant> = None;
    loop {
        match target_epoch.load(Ordering::Acquire) {
            0 => {} // clients still running
            target if last_epoch + 1 >= target => return Ok(observed),
            _ => {
                let at = *deadline.get_or_insert_with(|| Instant::now() + CATCH_UP_DEADLINE);
                if Instant::now() > at {
                    return Err(format!(
                        "subscriber stuck at epoch {last_epoch}: updates were lost"
                    ));
                }
            }
        }
        let update = subscriber
            .next_update(Duration::from_millis(200))
            .map_err(|e| format!("subscriber read failed: {e}"))?;
        let Some(update) = update else { continue };
        assert_eq!(
            update.prev_epoch, last_epoch,
            "subscription update chain has a gap (lost or out-of-order update)"
        );
        assert!(update.epoch > update.prev_epoch);
        observed.updates += 1;
        observed.max_lag_epochs = observed
            .max_lag_epochs
            .max(executor.epoch().saturating_sub(update.epoch));
        last_epoch = update.epoch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_dataset_with_store, DatasetSize};
    use wireframe_graph::StoreKind;

    #[test]
    fn client_programs_are_seed_deterministic_and_mixed() {
        let opts = ServeNetOptions::default();
        let predicates = vec!["knows".to_owned(), "likes".to_owned()];
        let nodes = vec!["a".to_owned(), "b".to_owned(), "c".to_owned()];
        let generate = |c: usize| client_program(c, opts.requests, 20, &predicates, &nodes, &opts);
        for c in 0..4 {
            let program = generate(c);
            // Pre-generated programs cannot depend on timing, so the same
            // seed reproduces the identical request sequence.
            assert_eq!(program, generate(c), "client {c} program drifts");
            let writes = program
                .iter()
                .filter(|a| matches!(a, Action::Write(_)))
                .count();
            assert!(writes > 0, "client {c} never writes");
            assert!(writes < program.len(), "client {c} never reads");
            // Writes stay in the client's namespace.
            for action in &program {
                if let Action::Write(script) = action {
                    assert!(script.contains(&format!("net_c{c}_n")), "{script}");
                }
            }
        }
        // Different clients draw different streams.
        assert_ne!(generate(0), generate(1));
    }

    #[test]
    fn serve_net_smoke_runs_over_real_sockets() {
        let graph = Arc::new(build_dataset_with_store(
            DatasetSize::Tiny,
            StoreKind::Delta,
        ));
        let workload = wireframe_datagen::full_workload(&graph).unwrap();
        let executor: Arc<dyn QueryExecutor> = Arc::new(wireframe::Session::shared(graph));
        let opts = ServeNetOptions {
            clients: 2,
            requests: 20,
            ..ServeNetOptions::default()
        };
        let run = run_serve_net(&executor, &workload, &opts).unwrap();
        let serve = run.serve.as_ref().expect("serve-net reports serve");
        assert_eq!(serve.clients, 2);
        assert_eq!(serve.requests, 40);
        assert_eq!(serve.queries + serve.mutations, serve.requests);
        assert!(serve.mutations > 0, "the seeded mix actually writes");
        assert_eq!(serve.shed, 0, "no overload at this scale");
        assert!(serve.p50_ms > 0.0 && serve.p50_ms <= serve.p999_ms);
        assert_eq!(serve.final_epoch, serve.mutation_batches);
        assert_eq!(executor.epoch(), serve.final_epoch);
        assert!(
            run.queries.is_empty(),
            "serve-net reports tails, not per-query"
        );
        assert!(run.churn.is_none());
    }

    #[test]
    fn serve_net_obs_off_still_scrapes_counters() {
        let graph = Arc::new(build_dataset_with_store(
            DatasetSize::Tiny,
            StoreKind::Delta,
        ));
        let workload = wireframe_datagen::full_workload(&graph).unwrap();
        let executor: Arc<dyn QueryExecutor> = Arc::new(wireframe::Session::shared(graph));
        let out = std::env::temp_dir().join(format!(
            "wfbench-servenet-metrics-{}.txt",
            std::process::id()
        ));
        let opts = ServeNetOptions {
            clients: 2,
            requests: 10,
            obs: false,
            metrics_out: Some(out.to_string_lossy().into_owned()),
            ..ServeNetOptions::default()
        };
        let run = run_serve_net(&executor, &workload, &opts).unwrap();
        let serve = run.serve.as_ref().unwrap();
        assert!(!serve.obs, "the A/B flag lands in the report");
        let text = std::fs::read_to_string(&out).unwrap();
        std::fs::remove_file(&out).ok();
        // Counters survive --obs off; the histogram summaries do not.
        assert!(text.contains("wf_serve_queries "), "{text}");
        assert!(!text.contains("wf_serve_request_us_count"), "{text}");
    }
}

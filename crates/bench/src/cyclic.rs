//! The `wfbench --scenario cyclic` lane: the worst-case-optimal generic-join
//! engine (`wco`) measured side-by-side with the triangulating wireframe
//! configuration (`wireframe` + edge burnback) on a triangle-heavy workload.
//!
//! Like the sharded lane, this is a correctness gate first and a throughput
//! measurement second:
//!
//! 1. every workload query is answered by both executors and the embedding
//!    sets must match **exactly** (count and content — bit-identical rows),
//! 2. a seeded mutation batch is applied to both executors and the whole
//!    workload is re-checked, so both engines are verified on the mutated
//!    graph too,
//! 3. only then does the closed-loop driver measure both executors over the
//!    post-churn graph, reporting the runs as engines `wco` and
//!    `triangulation`.
//!
//! Any divergence is an error (exit 2 from `wfbench`), never a report row.
//!
//! The dataset is built for this lane rather than taken from the Yago
//! generator: the generic-join advantage the paper's line of work predicts
//! shows on *skewed cyclic* instances, where binary-join intermediates (open
//! wedges) vastly outnumber the closed cycles. [`cyclic_dataset`] plants
//! that shape deterministically — dense `T1`/`T2` wedge layers closed by a
//! sparse `T3` matching (and a `Q1..Q4` analogue for directed 4-cycles), so
//! node-level burnback prunes nothing while the per-embedding work differs
//! sharply between the two strategies.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use wireframe::{EngineConfig, Mutation, Session, SessionConfig};
use wireframe_datagen::BenchmarkQuery;
use wireframe_graph::{Graph, GraphBuilder, NodeId, StoreKind};
use wireframe_query::templates::cycle;
use wireframe_query::{QueryError, Shape};

use crate::driver::run_engine;
use crate::report::EngineRun;
use crate::DatasetSize;

/// Seed of the committed cyclic dataset — fixed so the planted triangle and
/// 4-cycle counts (and therefore the baseline's embedding counts) are
/// reproducible across machines and runs.
pub const DATASET_SEED: u64 = 0x7C1C;

/// Configuration of one cyclic run.
#[derive(Debug, Clone)]
pub struct CyclicOptions {
    /// Closed-loop driver threads for the measured phase.
    pub threads: usize,
    /// Workload passes per thread for the measured phase.
    pub iterations: usize,
    /// Mutation operations in the seeded churn batch (0 skips the
    /// post-mutation re-check).
    pub batch: usize,
    /// PRNG seed of the churn batch.
    pub seed: u64,
}

impl Default for CyclicOptions {
    fn default() -> Self {
        CyclicOptions {
            threads: 1,
            iterations: 2,
            batch: 64,
            seed: 0xC0FFEE,
        }
    }
}

/// Per-size scale of the generated instance: nodes per tripartite group and
/// the out-degree of the dense wedge layers.
fn scale(size: DatasetSize) -> (usize, usize) {
    match size {
        DatasetSize::Tiny => (128, 6),
        DatasetSize::Small => (512, 10),
        DatasetSize::Benchmark => (2048, 14),
        DatasetSize::Large => (4096, 18),
    }
}

/// Builds the triangle-heavy instance: a tripartite block `tx → ty → tz →
/// tx` under labels `T1`/`T2`/`T3` and a quadripartite block `qx → qy → qz
/// → qw → qx` under `Q1..Q4`.
///
/// The wedge layers (`T1`, `T2`, `Q1..Q3`) are dense — `degree` random
/// out-edges per node — while the closing layer (`T3`, `Q4`) is a perfect
/// matching. Every node therefore participates in every pattern position
/// (node-level pruning removes nothing), but only the combinations that
/// thread through the matching close into answers. One planted
/// triangle/4-cycle per matched pair in the first quarter of each group
/// keeps the workload non-empty at every size.
pub fn cyclic_dataset(size: DatasetSize, store: StoreKind, seed: u64) -> Graph {
    let (group, degree) = scale(size);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();

    let tx = |i: usize| format!("tx{i}");
    let ty = |i: usize| format!("ty{i}");
    let tz = |i: usize| format!("tz{i}");
    for i in 0..group {
        // The sparse closing matching: tz_i → tx_i.
        b.add(&tz(i), "T3", &tx(i));
        // Dense wedge layers.
        for _ in 0..degree {
            b.add(&tx(i), "T1", &ty(rng.gen_range(0..group)));
            b.add(&ty(i), "T2", &tz(rng.gen_range(0..group)));
        }
    }
    // Planted triangles: tx_i → ty_i → tz_i closes through the matching.
    for i in 0..group / 4 {
        b.add(&tx(i), "T1", &ty(i));
        b.add(&ty(i), "T2", &tz(i));
    }

    let qx = |i: usize| format!("qx{i}");
    let qy = |i: usize| format!("qy{i}");
    let qz = |i: usize| format!("qz{i}");
    let qw = |i: usize| format!("qw{i}");
    for i in 0..group {
        b.add(&qw(i), "Q4", &qx(i));
        for _ in 0..degree {
            b.add(&qx(i), "Q1", &qy(rng.gen_range(0..group)));
            b.add(&qy(i), "Q2", &qz(rng.gen_range(0..group)));
            b.add(&qz(i), "Q3", &qw(rng.gen_range(0..group)));
        }
    }
    for i in 0..group / 4 {
        b.add(&qx(i), "Q1", &qy(i));
        b.add(&qy(i), "Q2", &qz(i));
        b.add(&qz(i), "Q3", &qw(i));
    }

    b.build().with_store(store)
}

/// The cyclic workload: three rotations of the directed triangle over
/// `T1`/`T2`/`T3` and two rotations of the directed 4-cycle over `Q1..Q4`,
/// named `CQY-1` … `CQY-5`.
pub fn cyclic_workload(graph: &Graph) -> Result<Vec<BenchmarkQuery>, QueryError> {
    let rows: [&[&str]; 5] = [
        &["T1", "T2", "T3"],
        &["T2", "T3", "T1"],
        &["T3", "T1", "T2"],
        &["Q1", "Q2", "Q3", "Q4"],
        &["Q2", "Q3", "Q4", "Q1"],
    ];
    rows.iter()
        .enumerate()
        .map(|(i, labels)| {
            Ok(BenchmarkQuery {
                row: i + 1,
                name: format!("CQY-{}", i + 1),
                query: cycle(graph.dictionary(), labels)?,
                shape: Shape::Cycle,
            })
        })
        .collect()
}

/// How many node labels the batch generator samples as edge endpoints.
const NODE_POOL: usize = 1024;

/// Builds the seeded mutation batch: mostly inserts over the instance's own
/// labels and nodes (a quarter with fresh subjects), the rest removals of
/// triples present in the base graph — the same mix the sharded lane churns
/// with, drawn from this lane's cyclic vocabulary.
fn seeded_batch(graph: &Graph, size: usize, seed: u64) -> Mutation {
    let dict = graph.dictionary();
    let predicates: Vec<String> = dict
        .predicates()
        .map(|(_, label)| label.to_owned())
        .collect();
    let nodes: Vec<String> = (0..graph.node_count().min(NODE_POOL))
        .map(|i| dict.node_label(NodeId(i as u32)).unwrap_or("?").to_owned())
        .collect();
    let removable: Vec<(String, String, String)> = graph
        .triples()
        .take(size)
        .map(|t| {
            (
                dict.node_label(t.subject).unwrap_or("?").to_owned(),
                dict.predicate_label(t.predicate).unwrap_or("?").to_owned(),
                dict.node_label(t.object).unwrap_or("?").to_owned(),
            )
        })
        .collect();

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut mutation = Mutation::new();
    if predicates.is_empty() || nodes.is_empty() {
        return mutation;
    }
    let mut fresh = 0usize;
    let mut removed = 0usize;
    for _ in 0..size {
        if removed < removable.len() && rng.gen_range(0..4usize) == 0 {
            let (s, p, o) = &removable[removed];
            removed += 1;
            mutation = mutation.remove(s, p, o);
        } else {
            let p = &predicates[rng.gen_range(0..predicates.len())];
            let o = &nodes[rng.gen_range(0..nodes.len())];
            let s = if rng.gen_range(0..4usize) == 0 {
                fresh += 1;
                format!("cyclic_n{fresh}")
            } else {
                nodes[rng.gen_range(0..nodes.len())].clone()
            };
            mutation = mutation.insert(&s, p, o);
        }
    }
    mutation
}

/// Asserts that the generic-join executor answers the whole workload exactly
/// like the triangulating reference: equal embedding counts and
/// bit-identical embedding sets.
fn verify_workload(
    wco: &Session,
    triangulation: &Session,
    workload: &[BenchmarkQuery],
    when: &str,
) -> Result<(), String> {
    for bq in workload {
        let reference = triangulation
            .execute(&bq.query)
            .map_err(|e| format!("{}: triangulation evaluation failed: {e}", bq.name))?;
        let answer = wco
            .execute(&bq.query)
            .map_err(|e| format!("{}: wco evaluation failed: {e}", bq.name))?;
        if answer.embedding_count() != reference.embedding_count() {
            return Err(format!(
                "{} ({when}): wco answered {} embeddings, triangulation {}",
                bq.name,
                answer.embedding_count(),
                reference.embedding_count()
            ));
        }
        if !answer.embeddings().same_answer(reference.embeddings()) {
            return Err(format!(
                "{} ({when}): wco embeddings differ from triangulation",
                bq.name
            ));
        }
    }
    Ok(())
}

/// Runs the cyclic lane: builds a `wco` session and a triangulating
/// `wireframe` session (edge burnback forced on) over the same graph,
/// verifies exact answer equality before and after a seeded mutation batch,
/// then measures both with the closed-loop driver. Returns the two runs as
/// engines `wco` and `triangulation`, in that order.
///
/// Both sessions run with view maintenance off: the lane compares full
/// evaluation strategies, and serving either side from a retained view
/// would measure the cache, not the join.
pub fn run_cyclic(
    graph: &Arc<Graph>,
    workload: &[BenchmarkQuery],
    config: EngineConfig,
    opts: &CyclicOptions,
) -> Result<(EngineRun, EngineRun), String> {
    let wco = Session::from_config(
        Arc::clone(graph),
        SessionConfig::new()
            .engine_config(config)
            .maintenance(false)
            .engine("wco"),
    )
    .map_err(|e| e.to_string())?;
    let triangulation = Session::from_config(
        Arc::clone(graph),
        SessionConfig::new()
            .engine_config(config.with_edge_burnback())
            .maintenance(false)
            .engine("wireframe"),
    )
    .map_err(|e| e.to_string())?;

    verify_workload(&wco, &triangulation, workload, "pre-churn")?;

    if opts.batch > 0 {
        let batch = seeded_batch(&wco.graph(), opts.batch, opts.seed);
        let wco_outcome = wco.apply_mutation(&batch);
        let tri_outcome = triangulation.apply_mutation(&batch);
        if (wco_outcome.inserted, wco_outcome.removed)
            != (tri_outcome.inserted, tri_outcome.removed)
        {
            return Err(format!(
                "mutation totals diverge: wco +{}/-{}, triangulation +{}/-{}",
                wco_outcome.inserted,
                wco_outcome.removed,
                tri_outcome.inserted,
                tri_outcome.removed
            ));
        }
        verify_workload(&wco, &triangulation, workload, "post-churn")?;
    }

    let wco_run =
        run_engine(&wco, workload, opts.threads, opts.iterations).map_err(|e| e.to_string())?;
    let mut tri_run = run_engine(&triangulation, workload, opts.threads, opts.iterations)
        .map_err(|e| e.to_string())?;
    tri_run.engine = "triangulation".to_owned();
    Ok((wco_run, tri_run))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cyclic_dataset_is_deterministic_and_the_workload_answers() {
        let a = cyclic_dataset(DatasetSize::Tiny, StoreKind::Csr, DATASET_SEED);
        let b = cyclic_dataset(DatasetSize::Tiny, StoreKind::Csr, DATASET_SEED);
        assert_eq!(a.triple_count(), b.triple_count());
        let other = cyclic_dataset(DatasetSize::Tiny, StoreKind::Csr, 1);
        assert_ne!(a.triple_count(), other.triple_count());

        let workload = cyclic_workload(&a).unwrap();
        assert_eq!(workload.len(), 5);
        let session = Session::shared(Arc::new(a));
        for bq in &workload {
            let ev = session.execute(&bq.query).unwrap();
            assert!(ev.cyclic, "{} is cyclic", bq.name);
            assert!(
                ev.embedding_count() > 0,
                "{}: planted cycles answer",
                bq.name
            );
        }
    }

    #[test]
    fn cyclic_lane_verifies_and_measures() {
        let graph = Arc::new(cyclic_dataset(
            DatasetSize::Tiny,
            StoreKind::Delta,
            DATASET_SEED,
        ));
        let workload = cyclic_workload(&graph).unwrap();
        let opts = CyclicOptions {
            threads: 1,
            iterations: 1,
            batch: 32,
            seed: 7,
        };
        let (wco, tri) = run_cyclic(&graph, &workload, EngineConfig::default(), &opts).unwrap();
        assert_eq!(wco.engine, "wco");
        assert_eq!(tri.engine, "triangulation");
        assert_eq!(wco.total_queries, workload.len() as u64);
        assert_eq!(tri.total_queries, workload.len() as u64);
        assert!(wco.qps > 0.0 && tri.qps > 0.0);
        for (w, t) in wco.queries.iter().zip(&tri.queries) {
            assert_eq!(w.embeddings, t.embeddings, "{}: identical answers", w.name);
            assert!(w.embeddings > 0, "{}: non-empty post-churn", w.name);
            assert!(
                w.answer_graph_edges.is_some() && t.answer_graph_edges.is_some(),
                "both engines factorize"
            );
        }
    }

    #[test]
    fn seeded_batches_are_deterministic() {
        let graph = cyclic_dataset(DatasetSize::Tiny, StoreKind::Delta, DATASET_SEED);
        let a = seeded_batch(&graph, 16, 42);
        let b = seeded_batch(&graph, 16, 42);
        assert_eq!(a.ops().len(), 16);
        assert_eq!(a.ops(), b.ops());
        let c = seeded_batch(&graph, 16, 43);
        assert_ne!(a.ops(), c.ops(), "different seeds draw different batches");
    }
}

//! The `wfbench --scenario sharded` lane: scatter-gather serving through a
//! [`ShardedCluster`], with every answer cross-checked against an unsharded
//! reference [`Session`] over the identical dataset.
//!
//! The lane is a correctness gate first and a throughput measurement second:
//!
//! 1. every workload query is answered by both executors and the embedding
//!    sets must match **exactly** (count and content — bit-identical rows),
//! 2. a seeded mutation batch is applied to both executors and the whole
//!    workload is re-checked, so the shard router's mutation path (subject
//!    routing, dictionary alignment, per-shard epochs) is on the verified
//!    path too,
//! 3. only then does the closed-loop driver ([`crate::driver::run_engine`])
//!    measure the cluster, reporting the run as engine `sharded-N`.
//!
//! Any divergence is an error (exit 2 from `wfbench`), never a report row —
//! a sharded lane that answers differently from the single session has no
//! performance worth recording.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use wireframe::{Mutation, QueryExecutor, Session, SessionConfig, ShardedCluster};
use wireframe_datagen::BenchmarkQuery;
use wireframe_graph::{Graph, NodeId};

use crate::driver::run_engine;
use crate::report::EngineRun;

/// Configuration of one sharded run.
#[derive(Debug, Clone)]
pub struct ShardedOptions {
    /// Number of vertex partitions the cluster scatters over.
    pub shards: usize,
    /// Closed-loop driver threads for the measured phase.
    pub threads: usize,
    /// Workload passes per thread for the measured phase.
    pub iterations: usize,
    /// Mutation operations in the seeded churn batch (0 skips the
    /// post-mutation re-check).
    pub batch: usize,
    /// PRNG seed of the churn batch.
    pub seed: u64,
}

impl Default for ShardedOptions {
    fn default() -> Self {
        ShardedOptions {
            shards: 2,
            threads: 1,
            iterations: 2,
            batch: 64,
            seed: 0xC0FFEE,
        }
    }
}

/// How many node labels the batch generator samples as edge endpoints.
const NODE_POOL: usize = 1024;

/// Builds the seeded mutation batch: mostly inserts (a quarter of them with
/// fresh subjects, exercising cross-shard dictionary alignment), the rest
/// removals of triples present in the base graph.
fn seeded_batch(graph: &Graph, size: usize, seed: u64) -> Mutation {
    let dict = graph.dictionary();
    let predicates: Vec<String> = dict
        .predicates()
        .map(|(_, label)| label.to_owned())
        .collect();
    let nodes: Vec<String> = (0..graph.node_count().min(NODE_POOL))
        .map(|i| dict.node_label(NodeId(i as u32)).unwrap_or("?").to_owned())
        .collect();
    let removable: Vec<(String, String, String)> = graph
        .triples()
        .take(size)
        .map(|t| {
            (
                dict.node_label(t.subject).unwrap_or("?").to_owned(),
                dict.predicate_label(t.predicate).unwrap_or("?").to_owned(),
                dict.node_label(t.object).unwrap_or("?").to_owned(),
            )
        })
        .collect();

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut mutation = Mutation::new();
    if predicates.is_empty() || nodes.is_empty() {
        return mutation;
    }
    let mut fresh = 0usize;
    let mut removed = 0usize;
    for _ in 0..size {
        if removed < removable.len() && rng.gen_range(0..4usize) == 0 {
            let (s, p, o) = &removable[removed];
            removed += 1;
            mutation = mutation.remove(s, p, o);
        } else {
            let p = &predicates[rng.gen_range(0..predicates.len())];
            let o = &nodes[rng.gen_range(0..nodes.len())];
            let s = if rng.gen_range(0..4usize) == 0 {
                fresh += 1;
                format!("sharded_n{fresh}")
            } else {
                nodes[rng.gen_range(0..nodes.len())].clone()
            };
            mutation = mutation.insert(&s, p, o);
        }
    }
    mutation
}

/// Asserts that the cluster answers the whole workload exactly like the
/// reference session: equal embedding counts and bit-identical embedding
/// sets, with correctly sized epoch vectors on every cluster evaluation.
fn verify_workload(
    reference: &Session,
    cluster: &ShardedCluster,
    workload: &[BenchmarkQuery],
    shards: usize,
    when: &str,
) -> Result<(), String> {
    for bq in workload {
        let expected = reference
            .execute(&bq.query)
            .map_err(|e| format!("{}: reference evaluation failed: {e}", bq.name))?;
        let sharded = cluster
            .execute(&bq.query)
            .map_err(|e| format!("{}: sharded evaluation failed: {e}", bq.name))?;
        if expected.embedding_count() != sharded.embedding_count() {
            return Err(format!(
                "{} ({when}): sharded answered {} embeddings, reference {}",
                bq.name,
                sharded.embedding_count(),
                expected.embedding_count()
            ));
        }
        if !expected.embeddings().same_answer(sharded.embeddings()) {
            return Err(format!(
                "{} ({when}): sharded embeddings differ from the reference",
                bq.name
            ));
        }
        // One epoch per shard, plus the cluster's scalar batch counter.
        if sharded.epochs.len() != shards + 1 {
            return Err(format!(
                "{} ({when}): evaluation carries {} epochs, expected {} (shards + cluster)",
                bq.name,
                sharded.epochs.len(),
                shards + 1
            ));
        }
    }
    Ok(())
}

/// Runs the sharded lane: builds a reference [`Session`] and a
/// [`ShardedCluster`] with `opts.shards` partitions from the same graph and
/// config, verifies exact answer equality before and after a seeded
/// mutation batch, then measures the cluster with the closed-loop driver.
/// The returned run reports as engine `sharded-N`.
pub fn run_sharded(
    graph: &Arc<Graph>,
    workload: &[BenchmarkQuery],
    config: SessionConfig,
    opts: &ShardedOptions,
) -> Result<EngineRun, String> {
    let reference =
        Session::from_config(Arc::clone(graph), config.clone()).map_err(|e| e.to_string())?;
    let cluster =
        ShardedCluster::new(Arc::clone(graph), opts.shards, config).map_err(|e| e.to_string())?;

    verify_workload(&reference, &cluster, workload, opts.shards, "pre-churn")?;

    if opts.batch > 0 {
        let batch = seeded_batch(&reference.graph(), opts.batch, opts.seed);
        let ref_outcome = reference.apply_mutation(&batch);
        let cl_outcome = cluster.apply_mutation(&batch);
        if (ref_outcome.inserted, ref_outcome.removed) != (cl_outcome.inserted, cl_outcome.removed)
        {
            return Err(format!(
                "mutation totals diverge: sharded +{}/-{}, reference +{}/-{}",
                cl_outcome.inserted, cl_outcome.removed, ref_outcome.inserted, ref_outcome.removed
            ));
        }
        let vector = cluster.epoch_vector();
        if vector.len() != opts.shards || cluster.epoch() != 1 {
            return Err(format!(
                "cluster epoch state off after one batch: scalar {}, vector {vector:?}",
                cluster.epoch()
            ));
        }
        verify_workload(&reference, &cluster, workload, opts.shards, "post-churn")?;
    }

    let mut run =
        run_engine(&cluster, workload, opts.threads, opts.iterations).map_err(|e| e.to_string())?;
    run.engine = format!("sharded-{}", opts.shards);
    Ok(run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_dataset_with_store, DatasetSize};
    use wireframe_datagen::full_workload;
    use wireframe_graph::StoreKind;

    #[test]
    fn sharded_lane_verifies_and_measures() {
        let graph = Arc::new(build_dataset_with_store(
            DatasetSize::Tiny,
            StoreKind::Delta,
        ));
        let workload = full_workload(&graph).unwrap();
        let workload = &workload[..4];
        for shards in [1, 2, 4] {
            let opts = ShardedOptions {
                shards,
                threads: 1,
                iterations: 1,
                batch: 32,
                seed: 7,
            };
            let run = run_sharded(&graph, workload, SessionConfig::new(), &opts).unwrap();
            assert_eq!(run.engine, format!("sharded-{shards}"));
            assert_eq!(run.total_queries, workload.len() as u64);
            assert!(run.qps > 0.0);
            assert_eq!(run.queries.len(), workload.len());
            for q in &run.queries {
                assert!(q.embeddings > 0, "{}: planted cores answer", q.name);
            }
        }
    }

    #[test]
    fn seeded_batches_are_deterministic() {
        let graph = build_dataset_with_store(DatasetSize::Tiny, StoreKind::Delta);
        let a = seeded_batch(&graph, 16, 42);
        let b = seeded_batch(&graph, 16, 42);
        assert_eq!(a.ops().len(), 16);
        assert_eq!(a.ops(), b.ops());
        let c = seeded_batch(&graph, 16, 43);
        assert_ne!(a.ops(), c.ops(), "different seeds draw different batches");
    }
}

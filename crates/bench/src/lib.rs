//! # wireframe-bench — the benchmark harness
//!
//! Shared plumbing for the binaries and Criterion benches that regenerate the
//! paper's evaluation: dataset construction, per-query measurement, and the
//! Table 1 row format. Engines are dispatched uniformly by name through the
//! workspace's engine registry ([`wireframe::default_registry`]) and measured
//! through the [`wireframe::Engine`] trait.
//!
//! The engines compared:
//!
//! * **WF** — the Wireframe answer-graph engine (`wireframe-core`),
//! * **REL** — the relational hash-join baseline, standing in for the paper's
//!   PostgreSQL / Virtuoso configurations,
//! * **SM** — the sort-merge relational baseline, standing in for the paper's
//!   MonetDB configuration,
//! * **EXPL** — the backtracking graph-exploration baseline, standing in for
//!   the paper's Neo4J configuration.
//!
//! Absolute times are not comparable with the paper (the paper measures
//! client/server systems over a 242 M-triple store); the quantities that are
//! expected to transfer are the *relative* ordering of the engines and the
//! |AG| ≪ |Embeddings| factorization gap.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod cyclic;
pub mod driver;
pub mod report;
pub mod servenet;
pub mod sharded;

use std::time::{Duration, Instant};

use serde::Serialize;

use wireframe::{default_registry, EngineConfig, PreparedQuery};
use wireframe_datagen::{generate, table1_queries, BenchmarkQuery, YagoConfig};
use wireframe_graph::{Graph, StoreKind};
use wireframe_query::Shape;

/// Which dataset size a harness run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetSize {
    /// A few thousand triples — used by tests and smoke runs.
    Tiny,
    /// Tens of thousands of triples — the default for `cargo bench`.
    Small,
    /// Hundreds of thousands of triples — the full harness run.
    Benchmark,
    /// Millions of triples — the out-of-cache "large graphs" run where
    /// storage layout dominates (same planted answers as `benchmark`).
    Large,
}

impl DatasetSize {
    /// Parses a size name: `tiny`, `small`, `benchmark` (alias `full`), or
    /// `large`.
    pub fn parse(value: &str) -> Result<Self, String> {
        match value {
            "tiny" => Ok(DatasetSize::Tiny),
            "small" => Ok(DatasetSize::Small),
            "benchmark" | "full" => Ok(DatasetSize::Benchmark),
            "large" => Ok(DatasetSize::Large),
            other => Err(format!(
                "unrecognized dataset size {other:?} (accepted: tiny, small, benchmark, large)"
            )),
        }
    }

    /// Reads the size from the `WIREFRAME_BENCH_SIZE` environment variable,
    /// defaulting to `small` when the variable is unset. An unrecognized
    /// value is an error (reported on stderr, exit code 2) rather than a
    /// silent fallback — a typo like `WIREFRAME_BENCH_SIZE=bencmark` must
    /// not quietly benchmark the wrong dataset.
    pub fn from_env() -> Self {
        match std::env::var("WIREFRAME_BENCH_SIZE") {
            Ok(value) => DatasetSize::parse(&value).unwrap_or_else(|msg| {
                eprintln!("WIREFRAME_BENCH_SIZE: {msg}");
                std::process::exit(2);
            }),
            Err(std::env::VarError::NotPresent) => DatasetSize::Small,
            Err(std::env::VarError::NotUnicode(raw)) => {
                eprintln!(
                    "WIREFRAME_BENCH_SIZE: non-UTF-8 value {:?} (accepted: tiny, small, benchmark, large)",
                    raw.to_string_lossy()
                );
                std::process::exit(2);
            }
        }
    }

    /// The size's canonical name (the value [`DatasetSize::parse`] accepts).
    pub fn name(self) -> &'static str {
        match self {
            DatasetSize::Tiny => "tiny",
            DatasetSize::Small => "small",
            DatasetSize::Benchmark => "benchmark",
            DatasetSize::Large => "large",
        }
    }

    /// The generator configuration for this size.
    pub fn config(self) -> YagoConfig {
        match self {
            DatasetSize::Tiny => YagoConfig::tiny(),
            DatasetSize::Small => YagoConfig::small(),
            DatasetSize::Benchmark => YagoConfig::benchmark(),
            DatasetSize::Large => YagoConfig::large(),
        }
    }
}

/// Builds the synthetic dataset for a harness run (default CSR backend).
pub fn build_dataset(size: DatasetSize) -> Graph {
    generate(&size.config())
}

/// Builds the synthetic dataset indexed with the given storage backend, so
/// the same seeded data can be measured on every store (`wfbench --store`).
pub fn build_dataset_with_store(size: DatasetSize, store: StoreKind) -> Graph {
    generate(&size.config()).with_store(store)
}

/// One measured row of Table 1.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Row number (1–10).
    pub row: usize,
    /// Query name (`CQS-1` … `CQD-5`).
    pub name: String,
    /// Predicate labels of the query, joined with `/` as in the paper.
    pub labels: String,
    /// Wireframe execution time.
    pub wf_ms: f64,
    /// Hash-join relational baseline execution time (PostgreSQL / Virtuoso proxy).
    pub relational_ms: f64,
    /// Sort-merge relational baseline execution time (MonetDB proxy).
    pub sortmerge_ms: f64,
    /// Exploration-baseline execution time (Neo4J proxy).
    pub exploration_ms: f64,
    /// Answer-graph size after phase one (|iAG| for snowflakes, |AG| for diamonds).
    pub answer_graph: usize,
    /// Number of embeddings.
    pub embeddings: usize,
    /// Edge walks performed by Wireframe's phase one.
    pub wf_edge_walks: u64,
    /// Edge walks performed by the exploration baseline.
    pub exploration_edge_walks: u64,
    /// Whether the query is cyclic (diamond).
    pub cyclic: bool,
}

impl Table1Row {
    /// |Embeddings| / |AG| — the factorization gap the paper highlights
    /// ("2,867 times smaller" for its second snowflake query).
    pub fn factorization_ratio(&self) -> f64 {
        self.embeddings as f64 / self.answer_graph.max(1) as f64
    }
}

fn label_list(graph: &Graph, bq: &BenchmarkQuery) -> String {
    let dict = graph.dictionary();
    bq.query
        .patterns()
        .iter()
        .map(|p| dict.predicate_label(p.predicate).unwrap_or("?"))
        .collect::<Vec<_>>()
        .join("/")
}

/// The registry names measured by the Table 1 harness, in column order.
pub const TABLE1_ENGINES: [&str; 4] = ["wireframe", "relational", "sortmerge", "exploration"];

/// Measures one benchmark query on every engine of [`TABLE1_ENGINES`],
/// repeating `repeats` times and keeping the average of the warm runs (all
/// but the first), which mirrors the paper's "average of the last four of
/// five runs" methodology.
///
/// All engines are driven uniformly through the workspace's engine registry
/// and the [`wireframe::Engine`] trait. The timed repeats measure
/// `evaluate` on a plan-less prepared query: the Wireframe engine then runs
/// its cost-based planner inside the timed region (the paper measures
/// end-to-end query time, and excluding planning would flatter the factorized
/// engine), while API bookkeeping that no engine performs — query cloning,
/// canonical-form computation — stays outside the loop for every column.
pub fn measure_query(graph: &Graph, bq: &BenchmarkQuery, repeats: usize) -> Table1Row {
    let registry = default_registry();
    let config = EngineConfig::default();

    let mut times: Vec<Vec<Duration>> = vec![Vec::new(); TABLE1_ENGINES.len()];
    let mut answer_graph = 0;
    let mut embeddings = 0;
    let mut wf_edge_walks = 0;
    let mut exploration_edge_walks = 0;

    for (col, name) in TABLE1_ENGINES.iter().enumerate() {
        let engine = registry
            .build(name, graph, &config)
            .expect("Table 1 engine is registered");
        let prepared = PreparedQuery::new(*name, bq.query.clone());
        for _ in 0..repeats.max(2) {
            let t = Instant::now();
            let ev = engine.evaluate(&prepared).expect("query evaluates");
            times[col].push(t.elapsed());

            if let Some(f) = &ev.factorized {
                answer_graph = f.answer_graph_edges;
                wf_edge_walks = f.edge_walks;
                // The |Embeddings| column reports the wireframe engine's
                // answer, the same run the |AG| column comes from.
                embeddings = ev.embedding_count();
            } else {
                assert_eq!(
                    ev.embedding_count(),
                    embeddings,
                    "{}: engine {name} disagrees with wireframe",
                    bq.name
                );
            }
            if *name == "exploration" {
                exploration_edge_walks = ev.metric("edge_walks").unwrap_or(0);
            }
        }
    }

    Table1Row {
        row: bq.row,
        name: bq.name.clone(),
        labels: label_list(graph, bq),
        wf_ms: warm_average_ms(&times[0]),
        relational_ms: warm_average_ms(&times[1]),
        sortmerge_ms: warm_average_ms(&times[2]),
        exploration_ms: warm_average_ms(&times[3]),
        answer_graph,
        embeddings,
        wf_edge_walks,
        exploration_edge_walks,
        cyclic: bq.shape == Shape::Cycle,
    }
}

/// Average of all but the first measurement, in milliseconds.
fn warm_average_ms(times: &[Duration]) -> f64 {
    let warm = &times[1..];
    let total: Duration = warm.iter().sum();
    total.as_secs_f64() * 1e3 / warm.len().max(1) as f64
}

/// Measures every Table 1 query.
pub fn measure_table1(graph: &Graph, repeats: usize) -> Vec<Table1Row> {
    table1_queries(graph)
        .expect("workload builds")
        .iter()
        .map(|bq| measure_query(graph, bq, repeats))
        .collect()
}

/// Renders rows in the layout of the paper's Table 1.
pub fn format_table1(rows: &[Table1Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<4} {:<7} {:<72} {:>9} {:>9} {:>9} {:>9} {:>9} {:>12} {:>9}\n",
        "row",
        "query",
        "labels (1/2/…)",
        "WF ms",
        "REL ms",
        "SM ms",
        "EXPL ms",
        "|AG|",
        "|Embeddings|",
        "ratio"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<4} {:<7} {:<72} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9} {:>12} {:>8.0}x\n",
            r.row,
            r.name,
            truncate(&r.labels, 72),
            r.wf_ms,
            r.relational_ms,
            r.sortmerge_ms,
            r.exploration_ms,
            r.answer_graph,
            r.embeddings,
            r.factorization_ratio()
        ));
    }
    out
}

fn truncate(s: &str, max: usize) -> String {
    if s.len() <= max {
        s.to_owned()
    } else {
        format!("{}…", &s[..max - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_harness_run_produces_ten_rows() {
        let g = build_dataset(DatasetSize::Tiny);
        let rows = measure_table1(&g, 2);
        assert_eq!(rows.len(), 10);
        for r in &rows {
            assert!(r.embeddings > 0, "{} must be non-empty", r.name);
            assert!(r.answer_graph > 0);
            assert!(r.wf_ms >= 0.0 && r.relational_ms >= 0.0 && r.exploration_ms >= 0.0);
        }
        assert!(rows[0..5].iter().all(|r| !r.cyclic));
        assert!(rows[5..10].iter().all(|r| r.cyclic));
    }

    #[test]
    fn snowflake_rows_show_a_factorization_gap() {
        let g = build_dataset(DatasetSize::Tiny);
        let rows = measure_table1(&g, 2);
        for r in rows.iter().filter(|r| !r.cyclic) {
            assert!(
                r.factorization_ratio() > 1.0,
                "{}: embeddings should outnumber answer edges",
                r.name
            );
        }
    }

    #[test]
    fn table_formatting_contains_every_query() {
        let g = build_dataset(DatasetSize::Tiny);
        let rows = measure_table1(&g, 2);
        let table = format_table1(&rows);
        for r in &rows {
            assert!(table.contains(&r.name));
        }
        assert!(table.contains("|Embeddings|"));
    }

    #[test]
    fn dataset_size_env_parsing() {
        assert_eq!(DatasetSize::Tiny.config(), YagoConfig::tiny());
        assert_eq!(DatasetSize::Benchmark.config(), YagoConfig::benchmark());
    }

    #[test]
    fn dataset_size_parse_accepts_names_and_rejects_typos() {
        assert_eq!(DatasetSize::parse("tiny"), Ok(DatasetSize::Tiny));
        assert_eq!(DatasetSize::parse("small"), Ok(DatasetSize::Small));
        assert_eq!(DatasetSize::parse("benchmark"), Ok(DatasetSize::Benchmark));
        assert_eq!(DatasetSize::parse("full"), Ok(DatasetSize::Benchmark));
        let err = DatasetSize::parse("bencmark").unwrap_err();
        assert!(
            err.contains("bencmark"),
            "the invalid value is named: {err}"
        );
        assert!(err.contains("tiny") && err.contains("small") && err.contains("benchmark"));
        for size in [
            DatasetSize::Tiny,
            DatasetSize::Small,
            DatasetSize::Benchmark,
        ] {
            assert_eq!(DatasetSize::parse(size.name()), Ok(size));
        }
    }
}

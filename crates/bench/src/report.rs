//! The machine-readable `wfbench` report: the `BENCH_*.json` schema, its
//! renderer/parser, and baseline regression comparison.
//!
//! # Schema (version 4)
//!
//! Version 4 adds the churn section's `topk` subsection (the
//! `--scenario churn --limit K` top-k serving lane; null for unlimited
//! runs). Version 3 added the per-engine `serve` section (the `serve-net`
//! network lane; null for every other scenario). Version 2 added the
//! `scenario` field and the per-engine `churn` section (null for serve
//! runs). Versions 1–3 still parse: v1 reads back as `scenario: "serve"`
//! with no churn data, pre-v3 reads back with `serve: null`, and pre-v4
//! churn sections read back with `topk: null`.
//!
//! ```json
//! {
//!   "schema_version": 4,
//!   "dataset": "tiny",          // DatasetSize name
//!   "store": "csr",             // graph storage backend (csr / map / delta)
//!   "scenario": "serve",        // driver scenario (serve / churn)
//!   "triples": 4100,            // dataset size actually generated
//!   "threads": 4,               // closed-loop driver threads
//!   "iterations": 5,            // workload passes per thread
//!   "workload": "full",         // workload name (20 queries for "full")
//!   "engines": [ {
//!     "engine": "wireframe",
//!     "total_queries": 400,     // queries issued across all threads
//!     "wall_ms": 123.4,         // driver wall-clock for this engine
//!     "qps": 3241.5,            // total_queries / wall seconds
//!     "cache_hits": 396,        // Session prepared-plan cache counters
//!     "cache_misses": 4,
//!     "churn": null,            // churn-scenario section, see below
//!     "queries": [ {
//!       "name": "CQS-1",
//!       "shape": "snowflake",
//!       "samples": 20,          // measured latencies (threads × iterations)
//!       "p50_ms": 0.8, "p95_ms": 1.1, "p99_ms": 1.4, "mean_ms": 0.9,
//!       "phases": {             // mean per-phase breakdown, milliseconds
//!         "planning_ms": 0.0, "answer_graph_ms": 0.5,
//!         "edge_burnback_ms": 0.0, "defactorization_ms": 0.3,
//!         "execution_ms": 0.0
//!       },
//!       "embeddings": 1216,            // |Embeddings|
//!       "answer_graph_edges": 48,      // |AG|; null for non-factorizing engines
//!       "ag_over_embeddings": 0.039    // |AG| / |Embeddings|; null likewise
//!     } ]
//!   } ]
//! }
//! ```
//!
//! A churn run (`wfbench --scenario churn`) leaves `queries` empty — answers
//! legitimately drift across epochs, so per-query percentiles are replaced
//! by a per-epoch breakdown:
//!
//! ```json
//! "churn": {
//!   "final_epoch": 4,           // session epoch after the last batch
//!   "total_mutations": 256,     // triples actually inserted + removed
//!   "total_invalidations": 12,  // cached plans evicted by footprint
//!   "total_compactions": 1,     // delta-store compactions triggered
//!   "total_maintained": 16,     // retained views maintained in place
//!   "total_full_evaluations": 24, // full pipeline runs across the session
//!   "epochs": [ {
//!     "epoch": 1, "wall_ms": 40.2, "queries": 40, "qps": 995.0,
//!     "inserted": 38, "removed": 26,          // this batch's net effect
//!     "invalidations": 3, "evictions": 0, "compactions": 0,
//!     "cache_hits": 37, "cache_misses": 3,    // this epoch's read phase
//!     "maintained": 4,            // views updated in O(delta) by the batch
//!     "maintenance_us": 180,      // wall-clock spent maintaining them
//!     "frontier_nodes": 9         // nodes the maintenance cascade touched
//!   } ],
//!   "topk": {                     // --limit K lane only; null otherwise
//!     "limit": 8,                 // rows requested per read
//!     "prefix_serves": 120,       // reads answered from a warm prefix, O(k)
//!     "full_serves": 60,          // reads that paid a full defactorization
//!     "prefix_refills": 20,       // prefix recomputes (priming + underflow)
//!     "prefix_fallbacks": 0,      // churn/overflow full-recompute fallbacks
//!     "prefix_p50_us": 11.0, "prefix_p99_us": 35.0,  // prefix view-serve µs
//!     "full_p50_us": 950.0, "full_p99_us": 2100.0    // full view-serve µs
//!   }
//! }
//! ```
//!
//! A network run (`wfbench --scenario serve-net`) also leaves `queries`
//! empty — the graph mutates underneath the readers, so per-query
//! percentiles are replaced by whole-run tail latency over real TCP:
//!
//! ```json
//! "serve": {
//!   "clients": 4,               // closed-loop TCP client threads
//!   "requests": 400,            // requests issued across all clients
//!   "queries": 323,             // … of which reads (seed-deterministic)
//!   "mutations": 77,            // … of which mutate scripts (ditto)
//!   "shed": 0,                  // refused by admission control
//!   "shed_rate": 0.0,           // shed / requests
//!   "p50_ms": 0.9, "p95_ms": 2.1, "p99_ms": 3.0, "p999_ms": 3.4,
//!   "mutation_batches": 61,     // maintenance passes actually run
//!   "coalesced_mutations": 30,  // mutate requests that shared a batch
//!   "subscription_updates": 44, // embedding deltas pushed to the subscriber
//!   "subscription_lag_epochs": 2, // worst observed subscriber staleness
//!   "final_epoch": 61           // server epoch when the run drained
//! }
//! ```
//!
//! `clients` / `requests` / `queries` / `mutations` are deterministic given
//! the seed and are compared exactly against a baseline; `p50_ms` is
//! compared with tolerance + the latency floor; everything else is
//! timing-dependent (shed, batching, lag) and reported for observability
//! only.
//!
//! The `maintained` / `maintenance_us` / `frontier_nodes` counters compare
//! the two `--maintenance` policies directly: under `incremental` the epochs
//! report maintained views and a small frontier, under `reeval` they report
//! zero maintenance and correspondingly higher invalidation/miss counts.
//! Version-2 reports written before these counters existed still parse
//! (epochs read back as zero; the totals read back as unknown and are not
//! compared).
//!
//! All latencies are milliseconds (floats); all counts are exact integers.
//! `ag_over_embeddings` is the paper's factorization claim in ratio form:
//! well below 1.0 means the answer graph is much smaller than the embedding
//! set it represents.

use serde::json::{self, Value};
use serde::Serialize;

/// Version stamp for `BENCH_*.json`; bump when the shape changes. The
/// parser also accepts version-1 (pre-churn), version-2 (pre-serving), and
/// version-3 (pre-top-k) documents.
pub const SCHEMA_VERSION: u64 = 4;

/// Mean per-phase latency breakdown, in milliseconds. Factorized phases are
/// zero for single-pass engines and vice versa (mirrors
/// [`wireframe::Timings`]).
#[derive(Debug, Clone, Default, Serialize)]
pub struct PhaseBreakdown {
    /// Planning (Edgifier + Triangulator).
    pub planning_ms: f64,
    /// Phase one: answer-graph generation.
    pub answer_graph_ms: f64,
    /// Optional edge burnback.
    pub edge_burnback_ms: f64,
    /// Phase two: embedding generation — **wall-clock** (what a client
    /// waits), even when parallel workers split the work.
    pub defactorization_ms: f64,
    /// Single-pass execution (non-factorized engines).
    pub execution_ms: f64,
    /// Phase two **cpu-sum** across defactorization workers: equals
    /// `defactorization_ms` on the sequential path, exceeds it when
    /// parallel workers overlap. Never added into totals. Reports written
    /// before the field existed read back as zero.
    pub defactorization_cpu_ms: f64,
}

/// Measured statistics of one query on one engine.
#[derive(Debug, Clone, Serialize)]
pub struct QueryReport {
    /// Query name (`CQC-1` … `CQD-5`).
    pub name: String,
    /// Query shape (`chain`, `star`, `snowflake`, `cycle`).
    pub shape: String,
    /// Number of latency samples behind the percentiles.
    pub samples: usize,
    /// Median latency.
    pub p50_ms: f64,
    /// 95th-percentile latency.
    pub p95_ms: f64,
    /// 99th-percentile latency.
    pub p99_ms: f64,
    /// Mean latency.
    pub mean_ms: f64,
    /// Mean per-phase breakdown.
    pub phases: PhaseBreakdown,
    /// Number of embeddings (identical across engines, asserted by the driver).
    pub embeddings: u64,
    /// Answer-graph size |AG|; `None` for engines that do not factorize.
    pub answer_graph_edges: Option<u64>,
    /// |AG| / |Embeddings| — the paper's factorization gap (small is good);
    /// `None` for engines that do not factorize.
    pub ag_over_embeddings: Option<f64>,
}

/// One epoch of a churn run: the mutation batch applied, the read phase
/// measured against the resulting graph version, and the counter deltas.
#[derive(Debug, Clone, Serialize)]
pub struct EpochReport {
    /// Session epoch after the batch (1-based).
    pub epoch: u64,
    /// Wall-clock of this epoch's read phase.
    pub wall_ms: f64,
    /// Queries issued in this epoch's read phase.
    pub queries: u64,
    /// Read throughput at this epoch.
    pub qps: f64,
    /// Triples the batch actually inserted (net, set semantics).
    pub inserted: u64,
    /// Triples the batch actually removed.
    pub removed: u64,
    /// Cached plans evicted because their footprint intersected the batch.
    pub invalidations: u64,
    /// Cached plans evicted by the capacity bound during this epoch.
    pub evictions: u64,
    /// Delta-store compactions triggered by the batch.
    pub compactions: u64,
    /// Prepared-plan cache hits during this epoch's reads.
    pub cache_hits: u64,
    /// Prepared-plan cache misses during this epoch's reads
    /// (re-preparations of invalidated plans).
    pub cache_misses: u64,
    /// Retained views maintained in place by this epoch's batch (instead of
    /// being evicted). Zero under the `reeval` policy and for engines that
    /// do not maintain; reports written before maintenance existed read
    /// back as zero.
    pub maintained: u64,
    /// Wall-clock spent maintaining those views, in microseconds.
    pub maintenance_us: u64,
    /// Answer-graph nodes from which maintenance cascaded (the frontier) —
    /// the `O(delta)` cost unit of incremental maintenance.
    pub frontier_nodes: u64,
}

/// The top-k serving lane of a churn run (`--scenario churn --limit K`):
/// every read pushes `limit` into evaluation, and view serves are split by
/// path — answered from the maintained defactorized prefix in `O(k)`, or by
/// a full defactorization (the per-epoch unlimited sweep, plus any limited
/// read the prefix could not answer).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct TopKReport {
    /// Rows requested per read (the `--limit` value).
    pub limit: u64,
    /// Measured reads answered from a warm prefix in `O(limit)`.
    pub prefix_serves: u64,
    /// Measured reads that paid a full defactorization.
    pub full_serves: u64,
    /// Prefix recomputes across the run (priming + underflow refills).
    pub prefix_refills: u64,
    /// Full-recompute fallbacks across the run (churn threshold or
    /// candidate overflow during maintenance).
    pub prefix_fallbacks: u64,
    /// Median view-serve latency of prefix-served reads, microseconds.
    pub prefix_p50_us: f64,
    /// 99th-percentile view-serve latency of prefix-served reads.
    pub prefix_p99_us: f64,
    /// Median view-serve latency of full-defactorization reads.
    pub full_p50_us: f64,
    /// 99th-percentile view-serve latency of full-defactorization reads.
    pub full_p99_us: f64,
}

/// The churn-scenario section of an [`EngineRun`].
#[derive(Debug, Clone, Serialize)]
pub struct ChurnReport {
    /// Session epoch after the last batch (= number of batches applied).
    pub final_epoch: u64,
    /// Net triples inserted + removed across all batches.
    pub total_mutations: u64,
    /// Cached plans evicted by predicate footprints, total.
    pub total_invalidations: u64,
    /// Delta-store compactions, total.
    pub total_compactions: u64,
    /// Retained views maintained in place, total. `None` when the report
    /// predates maintenance counters (those baselines stay parseable and
    /// are simply not compared on this metric).
    pub total_maintained: Option<u64>,
    /// Full pipeline runs (plan + generate + burnback) the engine's session
    /// performed across the whole churn run — the quantity incremental
    /// maintenance exists to minimize. `None` on pre-maintenance reports.
    pub total_full_evaluations: Option<u64>,
    /// Per-epoch breakdown, in order.
    pub epochs: Vec<EpochReport>,
    /// Top-k serving lane (`--limit K`); `None` for unlimited runs and on
    /// pre-v4 reports.
    pub topk: Option<TopKReport>,
}

/// The `serve-net` network-lane section of an [`EngineRun`]: tail latency
/// and admission-control observability for a closed-loop multi-client run
/// over real TCP sockets.
#[derive(Debug, Clone, Serialize)]
pub struct ServeReport {
    /// Closed-loop TCP client threads.
    pub clients: u64,
    /// Requests issued across all clients (`queries + mutations`).
    pub requests: u64,
    /// Read requests issued. Deterministic given the seed (shed requests
    /// still count — admission happens after the client decided what to
    /// send).
    pub queries: u64,
    /// Mutate requests issued. Deterministic given the seed.
    pub mutations: u64,
    /// Requests refused by admission control (`overloaded` responses).
    pub shed: u64,
    /// `shed / requests` — the headline overload signal.
    pub shed_rate: f64,
    /// Median request latency over the socket (shed requests excluded).
    pub p50_ms: f64,
    /// 95th-percentile request latency.
    pub p95_ms: f64,
    /// 99th-percentile request latency.
    pub p99_ms: f64,
    /// 99.9th-percentile request latency.
    pub p999_ms: f64,
    /// Mutation batches actually applied (maintenance passes run).
    pub mutation_batches: u64,
    /// Mutate requests that shared a batch with at least one other — the
    /// write-batching payoff (`mutations - mutation_batches` when every
    /// batch coalesces).
    pub coalesced_mutations: u64,
    /// Embedding-delta frames pushed to the subscriber.
    pub subscription_updates: u64,
    /// Worst observed subscriber staleness: server epoch at delta receipt
    /// minus the delta's epoch, maximized over all updates.
    pub subscription_lag_epochs: u64,
    /// Server epoch when the run drained (= `mutation_batches`).
    pub final_epoch: u64,
    /// Whether telemetry histograms and span sampling were enabled for the
    /// run (`wfbench --scenario serve-net --obs off` is the A/B lever for
    /// measuring instrumentation overhead). Reports written before the
    /// flag existed read back as `true`.
    pub obs: bool,
}

/// One engine's closed-loop run over the whole workload.
#[derive(Debug, Clone, Serialize)]
pub struct EngineRun {
    /// Registry name of the engine.
    pub engine: String,
    /// Queries issued across all driver threads.
    pub total_queries: u64,
    /// Wall-clock time of the closed loop.
    pub wall_ms: f64,
    /// Aggregate throughput: `total_queries` / wall seconds.
    pub qps: f64,
    /// Prepared-plan cache hits observed by the serving `Session`.
    pub cache_hits: u64,
    /// Prepared-plan cache misses observed by the serving `Session`.
    pub cache_misses: u64,
    /// Per-query statistics, in workload order (empty for churn runs, whose
    /// answers drift across epochs by design).
    pub queries: Vec<QueryReport>,
    /// Churn-scenario breakdown; `None` for serve runs.
    pub churn: Option<ChurnReport>,
    /// Network-lane (`serve-net`) breakdown; `None` for every other
    /// scenario, and on all pre-v3 reports.
    pub serve: Option<ServeReport>,
}

/// A complete `wfbench` run: the `BENCH_*.json` document.
#[derive(Debug, Clone, Serialize)]
pub struct BenchReport {
    /// [`SCHEMA_VERSION`].
    pub schema_version: u64,
    /// Dataset size name (`tiny` / `small` / `benchmark`).
    pub dataset: String,
    /// Graph storage backend the run was indexed with (`csr` / `map` /
    /// `delta`). Reports written before the field existed read back as
    /// `csr`.
    pub store: String,
    /// Driver scenario (`serve` / `churn`). Version-1 reports read back as
    /// `serve`.
    pub scenario: String,
    /// Triples in the generated dataset.
    pub triples: u64,
    /// Closed-loop driver threads.
    pub threads: usize,
    /// Workload passes per thread.
    pub iterations: usize,
    /// Workload name (`full`, `table1`, `chains`, `stars`).
    pub workload: String,
    /// One run per measured engine.
    pub engines: Vec<EngineRun>,
}

impl BenchReport {
    /// Renders the report as indented JSON (the `BENCH_*.json` format).
    pub fn to_json_string(&self) -> String {
        json::to_string_pretty(self)
    }

    /// Parses a report back from JSON, for `--baseline` comparison. Accepts
    /// the current schema, version 2 (pre-serving: no per-engine `serve`
    /// section), and version 1 (pre-churn: additionally no `scenario` and
    /// no per-engine `churn` section).
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let doc = json::from_str(text).map_err(|e| e.to_string())?;
        let version = field_u64(&doc, "schema_version")?;
        if !(1..=SCHEMA_VERSION).contains(&version) {
            return Err(format!(
                "unsupported schema_version {version} (this binary reads 1..={SCHEMA_VERSION})"
            ));
        }
        Ok(BenchReport {
            schema_version: version,
            dataset: field_str(&doc, "dataset")?,
            store: doc
                .get("store")
                .and_then(Value::as_str)
                .unwrap_or("csr")
                .to_owned(),
            scenario: doc
                .get("scenario")
                .and_then(Value::as_str)
                .unwrap_or("serve")
                .to_owned(),
            triples: field_u64(&doc, "triples")?,
            threads: field_u64(&doc, "threads")? as usize,
            iterations: field_u64(&doc, "iterations")? as usize,
            workload: field_str(&doc, "workload")?,
            engines: field_array(&doc, "engines")?
                .iter()
                .map(engine_from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

fn engine_from_json(doc: &Value) -> Result<EngineRun, String> {
    let churn = match doc.get("churn") {
        None | Some(Value::Null) => None,
        Some(section) => Some(churn_from_json(section)?),
    };
    // Absent on pre-v3 reports: those baselines stay loadable with no
    // serve section to compare against.
    let serve = match doc.get("serve") {
        None | Some(Value::Null) => None,
        Some(section) => Some(serve_from_json(section)?),
    };
    Ok(EngineRun {
        engine: field_str(doc, "engine")?,
        total_queries: field_u64(doc, "total_queries")?,
        wall_ms: field_f64(doc, "wall_ms")?,
        qps: field_f64(doc, "qps")?,
        cache_hits: field_u64(doc, "cache_hits")?,
        cache_misses: field_u64(doc, "cache_misses")?,
        queries: field_array(doc, "queries")?
            .iter()
            .map(query_from_json)
            .collect::<Result<_, _>>()?,
        churn,
        serve,
    })
}

fn serve_from_json(doc: &Value) -> Result<ServeReport, String> {
    Ok(ServeReport {
        clients: field_u64(doc, "clients")?,
        requests: field_u64(doc, "requests")?,
        queries: field_u64(doc, "queries")?,
        mutations: field_u64(doc, "mutations")?,
        shed: field_u64(doc, "shed")?,
        shed_rate: field_f64(doc, "shed_rate")?,
        p50_ms: field_f64(doc, "p50_ms")?,
        p95_ms: field_f64(doc, "p95_ms")?,
        p99_ms: field_f64(doc, "p99_ms")?,
        p999_ms: field_f64(doc, "p999_ms")?,
        mutation_batches: field_u64(doc, "mutation_batches")?,
        coalesced_mutations: field_u64(doc, "coalesced_mutations")?,
        subscription_updates: field_u64(doc, "subscription_updates")?,
        subscription_lag_epochs: field_u64(doc, "subscription_lag_epochs")?,
        final_epoch: field_u64(doc, "final_epoch")?,
        // Absent on pre-telemetry reports, which always ran instrumented.
        obs: doc.get("obs").and_then(Value::as_bool).unwrap_or(true),
    })
}

fn churn_from_json(doc: &Value) -> Result<ChurnReport, String> {
    // Absent on pre-v4 reports and on unlimited runs alike: both read back
    // with no top-k lane to compare against.
    let topk = match doc.get("topk") {
        None | Some(Value::Null) => None,
        Some(section) => Some(topk_from_json(section)?),
    };
    Ok(ChurnReport {
        final_epoch: field_u64(doc, "final_epoch")?,
        total_mutations: field_u64(doc, "total_mutations")?,
        total_invalidations: field_u64(doc, "total_invalidations")?,
        total_compactions: field_u64(doc, "total_compactions")?,
        // Absent on pre-maintenance reports (schema 2 without the counters):
        // keep those parseable, with the metric marked unknown.
        total_maintained: doc.get("total_maintained").and_then(Value::as_u64),
        total_full_evaluations: doc.get("total_full_evaluations").and_then(Value::as_u64),
        epochs: field_array(doc, "epochs")?
            .iter()
            .map(epoch_from_json)
            .collect::<Result<_, _>>()?,
        topk,
    })
}

fn topk_from_json(doc: &Value) -> Result<TopKReport, String> {
    Ok(TopKReport {
        limit: field_u64(doc, "limit")?,
        prefix_serves: field_u64(doc, "prefix_serves")?,
        full_serves: field_u64(doc, "full_serves")?,
        prefix_refills: field_u64(doc, "prefix_refills")?,
        prefix_fallbacks: field_u64(doc, "prefix_fallbacks")?,
        prefix_p50_us: field_f64(doc, "prefix_p50_us")?,
        prefix_p99_us: field_f64(doc, "prefix_p99_us")?,
        full_p50_us: field_f64(doc, "full_p50_us")?,
        full_p99_us: field_f64(doc, "full_p99_us")?,
    })
}

fn epoch_from_json(doc: &Value) -> Result<EpochReport, String> {
    Ok(EpochReport {
        epoch: field_u64(doc, "epoch")?,
        wall_ms: field_f64(doc, "wall_ms")?,
        queries: field_u64(doc, "queries")?,
        qps: field_f64(doc, "qps")?,
        inserted: field_u64(doc, "inserted")?,
        removed: field_u64(doc, "removed")?,
        invalidations: field_u64(doc, "invalidations")?,
        evictions: field_u64(doc, "evictions")?,
        compactions: field_u64(doc, "compactions")?,
        cache_hits: field_u64(doc, "cache_hits")?,
        cache_misses: field_u64(doc, "cache_misses")?,
        // Pre-maintenance epochs read back as zero (counters did not exist).
        maintained: doc.get("maintained").and_then(Value::as_u64).unwrap_or(0),
        maintenance_us: doc
            .get("maintenance_us")
            .and_then(Value::as_u64)
            .unwrap_or(0),
        frontier_nodes: doc
            .get("frontier_nodes")
            .and_then(Value::as_u64)
            .unwrap_or(0),
    })
}

fn query_from_json(doc: &Value) -> Result<QueryReport, String> {
    let phases = doc
        .get("phases")
        .ok_or_else(|| "query report is missing \"phases\"".to_owned())?;
    Ok(QueryReport {
        name: field_str(doc, "name")?,
        shape: field_str(doc, "shape")?,
        samples: field_u64(doc, "samples")? as usize,
        p50_ms: field_f64(doc, "p50_ms")?,
        p95_ms: field_f64(doc, "p95_ms")?,
        p99_ms: field_f64(doc, "p99_ms")?,
        mean_ms: field_f64(doc, "mean_ms")?,
        phases: PhaseBreakdown {
            planning_ms: field_f64(phases, "planning_ms")?,
            answer_graph_ms: field_f64(phases, "answer_graph_ms")?,
            edge_burnback_ms: field_f64(phases, "edge_burnback_ms")?,
            defactorization_ms: field_f64(phases, "defactorization_ms")?,
            execution_ms: field_f64(phases, "execution_ms")?,
            // Absent on reports written before the wall/cpu split.
            defactorization_cpu_ms: phases
                .get("defactorization_cpu_ms")
                .and_then(Value::as_f64)
                .unwrap_or(0.0),
        },
        embeddings: field_u64(doc, "embeddings")?,
        answer_graph_edges: doc.get("answer_graph_edges").and_then(Value::as_u64),
        ag_over_embeddings: doc.get("ag_over_embeddings").and_then(Value::as_f64),
    })
}

fn field<'a>(doc: &'a Value, name: &str) -> Result<&'a Value, String> {
    doc.get(name)
        .ok_or_else(|| format!("report is missing field {name:?}"))
}

fn field_str(doc: &Value, name: &str) -> Result<String, String> {
    field(doc, name)?
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| format!("field {name:?} is not a string"))
}

fn field_u64(doc: &Value, name: &str) -> Result<u64, String> {
    field(doc, name)?
        .as_u64()
        .ok_or_else(|| format!("field {name:?} is not an unsigned integer"))
}

fn field_f64(doc: &Value, name: &str) -> Result<f64, String> {
    field(doc, name)?
        .as_f64()
        .ok_or_else(|| format!("field {name:?} is not a number"))
}

fn field_array<'a>(doc: &'a Value, name: &str) -> Result<&'a [Value], String> {
    field(doc, name)?
        .as_array()
        .ok_or_else(|| format!("field {name:?} is not an array"))
}

/// Latency differences below this absolute floor never count as regressions:
/// tiny-dataset queries answer in microseconds, where scheduler jitter alone
/// exceeds any sensible relative tolerance.
pub const LATENCY_FLOOR_MS: f64 = 0.5;

/// One regression found by [`compare`].
#[derive(Debug, Clone)]
pub struct Regression {
    /// Engine the regression was observed on.
    pub engine: String,
    /// Query name, or `*` for engine-level metrics (QPS).
    pub query: String,
    /// Which metric regressed (`p50_ms`, `qps`, `embeddings`, …).
    pub metric: &'static str,
    /// The committed baseline value.
    pub baseline: f64,
    /// The value measured by this run.
    pub current: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{}: {} regressed from {:.3} to {:.3}",
            self.engine, self.query, self.metric, self.baseline, self.current
        )
    }
}

/// Compares `current` against a committed `baseline` with a relative
/// `tolerance` (0.15 = 15% slack).
///
/// * Latency (`p50_ms`) and throughput (`qps`) regress when they are worse
///   than the baseline by more than the tolerance; latency additionally must
///   exceed [`LATENCY_FLOOR_MS`] of absolute slowdown.
/// * Result counts (`embeddings`, `answer_graph_edges`) must match exactly —
///   a drifting answer is a correctness bug, not a performance matter, so
///   tolerance never excuses it.
/// * Churn counters (`total_mutations`, `total_invalidations`,
///   `total_compactions`) are deterministic given the seed, so they also
///   must match exactly when the baseline recorded a churn section.
/// * The top-k lane's `limit` is configuration and must match exactly when
///   the baseline recorded a `topk` section; `prefix_p50_us` / `full_p50_us`
///   regress like any latency (tolerance + floor). Serve/refill counts are
///   interleaving-dependent and never compared.
/// * Serve-net traffic counts (`clients`, `requests`, `queries`,
///   `mutations`) are seed-deterministic and must match exactly when the
///   baseline recorded a serve section; `serve_p50_ms` regresses like any
///   latency (tolerance + floor). Shed/batching/lag counters are
///   timing-dependent and never compared.
/// * Engine × query pairs absent from the baseline are skipped (the workload
///   is allowed to grow); pairs absent from the current run regress as
///   `missing` (a silently dropped measurement must not pass).
pub fn compare(current: &BenchReport, baseline: &BenchReport, tolerance: f64) -> Vec<Regression> {
    let mut regressions = Vec::new();
    for base_engine in &baseline.engines {
        let Some(cur_engine) = current
            .engines
            .iter()
            .find(|e| e.engine == base_engine.engine)
        else {
            regressions.push(Regression {
                engine: base_engine.engine.clone(),
                query: "*".to_owned(),
                metric: "missing",
                baseline: base_engine.total_queries as f64,
                current: 0.0,
            });
            continue;
        };
        if let Some(base_churn) = &base_engine.churn {
            let cur_churn = cur_engine.churn.as_ref();
            let pairs: [(&'static str, u64, Option<u64>); 3] = [
                (
                    "churn_mutations",
                    base_churn.total_mutations,
                    cur_churn.map(|c| c.total_mutations),
                ),
                (
                    "churn_invalidations",
                    base_churn.total_invalidations,
                    cur_churn.map(|c| c.total_invalidations),
                ),
                (
                    "churn_compactions",
                    base_churn.total_compactions,
                    cur_churn.map(|c| c.total_compactions),
                ),
            ];
            for (metric, base_value, cur_value) in pairs {
                if cur_value != Some(base_value) {
                    regressions.push(Regression {
                        engine: base_engine.engine.clone(),
                        query: "*".to_owned(),
                        metric,
                        baseline: base_value as f64,
                        current: cur_value.unwrap_or(0) as f64,
                    });
                }
            }
            // Seeded maintenance counters are deterministic too, but only
            // comparable when the baseline recorded them (pre-maintenance
            // baselines parse with the metric unknown and are skipped).
            if let Some(base_maintained) = base_churn.total_maintained {
                let cur_maintained = cur_churn.and_then(|c| c.total_maintained);
                if cur_maintained != Some(base_maintained) {
                    regressions.push(Regression {
                        engine: base_engine.engine.clone(),
                        query: "*".to_owned(),
                        metric: "churn_maintained",
                        baseline: base_maintained as f64,
                        current: cur_maintained.unwrap_or(0) as f64,
                    });
                }
            }
            // The top-k lane: the requested limit is configuration and must
            // match exactly — comparing different limits would be
            // meaningless. The per-path view-serve medians regress like any
            // latency (tolerance + the absolute floor, in microseconds).
            // Serve/refill counts depend on thread interleaving and are
            // reported for observability only.
            if let Some(base_topk) = base_churn.topk {
                let cur_topk = cur_churn.and_then(|c| c.topk);
                if cur_topk.map(|t| t.limit) != Some(base_topk.limit) {
                    regressions.push(Regression {
                        engine: base_engine.engine.clone(),
                        query: "*".to_owned(),
                        metric: "topk_limit",
                        baseline: base_topk.limit as f64,
                        current: cur_topk.map_or(0.0, |t| t.limit as f64),
                    });
                }
                if let Some(cur_topk) = cur_topk {
                    let floor_us = LATENCY_FLOOR_MS * 1000.0;
                    let latencies: [(&'static str, f64, f64); 2] = [
                        (
                            "topk_prefix_p50_us",
                            base_topk.prefix_p50_us,
                            cur_topk.prefix_p50_us,
                        ),
                        (
                            "topk_full_p50_us",
                            base_topk.full_p50_us,
                            cur_topk.full_p50_us,
                        ),
                    ];
                    for (metric, base_value, cur_value) in latencies {
                        if cur_value > base_value * (1.0 + tolerance)
                            && cur_value - base_value > floor_us
                        {
                            regressions.push(Regression {
                                engine: base_engine.engine.clone(),
                                query: "*".to_owned(),
                                metric,
                                baseline: base_value,
                                current: cur_value,
                            });
                        }
                    }
                }
            }
        }
        if let Some(base_serve) = &base_engine.serve {
            let cur_serve = cur_engine.serve.as_ref();
            let pairs: [(&'static str, u64, Option<u64>); 4] = [
                (
                    "serve_clients",
                    base_serve.clients,
                    cur_serve.map(|s| s.clients),
                ),
                (
                    "serve_requests",
                    base_serve.requests,
                    cur_serve.map(|s| s.requests),
                ),
                (
                    "serve_queries",
                    base_serve.queries,
                    cur_serve.map(|s| s.queries),
                ),
                (
                    "serve_mutations",
                    base_serve.mutations,
                    cur_serve.map(|s| s.mutations),
                ),
            ];
            for (metric, base_value, cur_value) in pairs {
                if cur_value != Some(base_value) {
                    regressions.push(Regression {
                        engine: base_engine.engine.clone(),
                        query: "*".to_owned(),
                        metric,
                        baseline: base_value as f64,
                        current: cur_value.unwrap_or(0) as f64,
                    });
                }
            }
            if let Some(cur_serve) = cur_serve {
                if cur_serve.p50_ms > base_serve.p50_ms * (1.0 + tolerance)
                    && cur_serve.p50_ms - base_serve.p50_ms > LATENCY_FLOOR_MS
                {
                    regressions.push(Regression {
                        engine: base_engine.engine.clone(),
                        query: "*".to_owned(),
                        metric: "serve_p50_ms",
                        baseline: base_serve.p50_ms,
                        current: cur_serve.p50_ms,
                    });
                }
            }
        }
        if cur_engine.qps < base_engine.qps / (1.0 + tolerance) {
            regressions.push(Regression {
                engine: base_engine.engine.clone(),
                query: "*".to_owned(),
                metric: "qps",
                baseline: base_engine.qps,
                current: cur_engine.qps,
            });
        }
        for base_query in &base_engine.queries {
            let Some(cur_query) = cur_engine
                .queries
                .iter()
                .find(|q| q.name == base_query.name)
            else {
                regressions.push(Regression {
                    engine: base_engine.engine.clone(),
                    query: base_query.name.clone(),
                    metric: "missing",
                    baseline: base_query.embeddings as f64,
                    current: 0.0,
                });
                continue;
            };
            if cur_query.p50_ms > base_query.p50_ms * (1.0 + tolerance)
                && cur_query.p50_ms - base_query.p50_ms > LATENCY_FLOOR_MS
            {
                regressions.push(Regression {
                    engine: base_engine.engine.clone(),
                    query: base_query.name.clone(),
                    metric: "p50_ms",
                    baseline: base_query.p50_ms,
                    current: cur_query.p50_ms,
                });
            }
            if cur_query.embeddings != base_query.embeddings {
                regressions.push(Regression {
                    engine: base_engine.engine.clone(),
                    query: base_query.name.clone(),
                    metric: "embeddings",
                    baseline: base_query.embeddings as f64,
                    current: cur_query.embeddings as f64,
                });
            }
            // A baseline |AG| disappearing from the current run is itself a
            // regression (the engine stopped factorizing, or the measurement
            // was dropped) — not a pass.
            if let Some(base_ag) = base_query.answer_graph_edges {
                if cur_query.answer_graph_edges != Some(base_ag) {
                    regressions.push(Regression {
                        engine: base_engine.engine.clone(),
                        query: base_query.name.clone(),
                        metric: "answer_graph_edges",
                        baseline: base_ag as f64,
                        current: cur_query.answer_graph_edges.unwrap_or(0) as f64,
                    });
                }
            }
        }
    }
    regressions
}

/// Parses a tolerance argument: `15%` or a bare ratio like `0.15`.
///
/// A bare value above 1.0 is rejected: `--tolerance 15` almost certainly
/// means `15%`, and silently reading it as 1500% slack would disable the
/// regression gate. Use the `%` form for slack beyond 100%.
pub fn parse_tolerance(text: &str) -> Result<f64, String> {
    let (digits, percent) = match text.strip_suffix('%') {
        Some(d) => (d, true),
        None => (text, false),
    };
    let value: f64 = digits
        .trim()
        .parse()
        .map_err(|_| format!("invalid tolerance {text:?} (examples: 15%, 0.15)"))?;
    if !percent && value > 1.0 {
        return Err(format!(
            "ambiguous tolerance {text:?}: bare values are ratios (max 1.0); \
             did you mean {value}%?"
        ));
    }
    let ratio = if percent { value / 100.0 } else { value };
    if !(0.0..=100.0).contains(&ratio) {
        return Err(format!("tolerance {text:?} out of range"));
    }
    Ok(ratio)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            dataset: "tiny".into(),
            store: "csr".into(),
            scenario: "serve".into(),
            triples: 4100,
            threads: 2,
            iterations: 3,
            workload: "full".into(),
            engines: vec![EngineRun {
                engine: "wireframe".into(),
                total_queries: 120,
                wall_ms: 100.0,
                qps: 1200.0,
                cache_hits: 114,
                cache_misses: 6,
                churn: None,
                serve: None,
                queries: vec![QueryReport {
                    name: "CQS-1".into(),
                    shape: "snowflake".into(),
                    samples: 6,
                    p50_ms: 2.0,
                    p95_ms: 3.0,
                    p99_ms: 3.5,
                    mean_ms: 2.2,
                    phases: PhaseBreakdown {
                        planning_ms: 0.1,
                        answer_graph_ms: 1.2,
                        edge_burnback_ms: 0.0,
                        defactorization_ms: 0.9,
                        execution_ms: 0.0,
                        defactorization_cpu_ms: 0.9,
                    },
                    embeddings: 1216,
                    answer_graph_edges: Some(48),
                    ag_over_embeddings: Some(48.0 / 1216.0),
                }],
            }],
        }
    }

    fn churn_report() -> BenchReport {
        let mut report = sample_report();
        report.scenario = "churn".into();
        report.store = "delta".into();
        report.engines[0].queries.clear();
        report.engines[0].churn = Some(ChurnReport {
            final_epoch: 2,
            total_mutations: 90,
            total_invalidations: 7,
            total_compactions: 1,
            total_maintained: Some(5),
            total_full_evaluations: Some(11),
            epochs: vec![
                EpochReport {
                    epoch: 1,
                    wall_ms: 40.0,
                    queries: 40,
                    qps: 1000.0,
                    inserted: 30,
                    removed: 15,
                    invalidations: 4,
                    evictions: 0,
                    compactions: 0,
                    cache_hits: 36,
                    cache_misses: 4,
                    maintained: 2,
                    maintenance_us: 120,
                    frontier_nodes: 6,
                },
                EpochReport {
                    epoch: 2,
                    wall_ms: 41.0,
                    queries: 40,
                    qps: 975.6,
                    inserted: 30,
                    removed: 15,
                    invalidations: 3,
                    evictions: 0,
                    compactions: 1,
                    cache_hits: 37,
                    cache_misses: 3,
                    maintained: 3,
                    maintenance_us: 150,
                    frontier_nodes: 8,
                },
            ],
            topk: None,
        });
        report
    }

    fn topk_report() -> BenchReport {
        let mut report = churn_report();
        report.engines[0].churn.as_mut().unwrap().topk = Some(TopKReport {
            limit: 8,
            prefix_serves: 120,
            full_serves: 60,
            prefix_refills: 20,
            prefix_fallbacks: 1,
            prefix_p50_us: 11.0,
            prefix_p99_us: 35.0,
            full_p50_us: 950.0,
            full_p99_us: 2100.0,
        });
        report
    }

    fn serve_report() -> BenchReport {
        let mut report = sample_report();
        report.scenario = "serve-net".into();
        report.store = "delta".into();
        report.engines[0].queries.clear();
        report.engines[0].serve = Some(ServeReport {
            clients: 4,
            requests: 400,
            queries: 323,
            mutations: 77,
            shed: 3,
            shed_rate: 3.0 / 400.0,
            p50_ms: 0.9,
            p95_ms: 2.1,
            p99_ms: 3.0,
            p999_ms: 3.4,
            mutation_batches: 61,
            coalesced_mutations: 30,
            subscription_updates: 44,
            subscription_lag_epochs: 2,
            final_epoch: 61,
            obs: true,
        });
        report
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = sample_report();
        let text = report.to_json_string();
        let parsed = BenchReport::from_json(&text).unwrap();
        assert_eq!(parsed.dataset, "tiny");
        assert_eq!(parsed.store, "csr");
        assert_eq!(parsed.scenario, "serve");
        assert!(parsed.engines[0].churn.is_none());
        assert_eq!(parsed.engines.len(), 1);
        let q = &parsed.engines[0].queries[0];
        assert_eq!(q.name, "CQS-1");
        assert_eq!(q.embeddings, 1216);
        assert_eq!(q.answer_graph_edges, Some(48));
        assert!((q.p50_ms - 2.0).abs() < 1e-9);
        assert!((q.phases.answer_graph_ms - 1.2).abs() < 1e-9);
        assert!(compare(&parsed, &report, 0.15).is_empty());
    }

    #[test]
    fn reports_without_a_store_field_read_as_csr() {
        // Baselines recorded before the store field existed must stay readable.
        let text = sample_report()
            .to_json_string()
            .replace("\"store\": \"csr\",", "");
        let parsed = BenchReport::from_json(&text).unwrap();
        assert_eq!(parsed.store, "csr");
    }

    #[test]
    fn churn_sections_round_trip() {
        let report = churn_report();
        let text = report.to_json_string();
        assert!(text.contains("\"final_epoch\": 2"), "{text}");
        let parsed = BenchReport::from_json(&text).unwrap();
        assert_eq!(parsed.scenario, "churn");
        let churn = parsed.engines[0].churn.as_ref().unwrap();
        assert_eq!(churn.final_epoch, 2);
        assert_eq!(churn.total_mutations, 90);
        assert_eq!(churn.total_invalidations, 7);
        assert_eq!(churn.total_compactions, 1);
        assert_eq!(churn.total_maintained, Some(5));
        assert_eq!(churn.total_full_evaluations, Some(11));
        assert_eq!(churn.epochs.len(), 2);
        assert_eq!(churn.epochs[1].compactions, 1);
        assert_eq!(churn.epochs[1].maintained, 3);
        assert_eq!(churn.epochs[1].maintenance_us, 150);
        assert_eq!(churn.epochs[1].frontier_nodes, 8);
        assert!((churn.epochs[0].qps - 1000.0).abs() < 1e-9);
        assert!(parsed.engines[0].churn.as_ref().unwrap().topk.is_none());
        assert!(compare(&parsed, &report, 0.15).is_empty());
    }

    #[test]
    fn topk_sections_round_trip_and_gate_like_latencies() {
        let report = topk_report();
        let text = report.to_json_string();
        assert!(text.contains("\"prefix_p50_us\""), "{text}");
        let parsed = BenchReport::from_json(&text).unwrap();
        let topk = parsed.engines[0].churn.as_ref().unwrap().topk.unwrap();
        assert_eq!(topk.limit, 8);
        assert_eq!(topk.prefix_serves, 120);
        assert_eq!(topk.full_serves, 60);
        assert_eq!(topk.prefix_refills, 20);
        assert_eq!(topk.prefix_fallbacks, 1);
        assert!((topk.prefix_p50_us - 11.0).abs() < 1e-9);
        assert!((topk.full_p99_us - 2100.0).abs() < 1e-9);
        assert!(compare(&parsed, &report, 0.15).is_empty());

        // A different --limit is configuration drift, not a perf matter:
        // regression regardless of tolerance.
        let mut other = topk_report();
        other.engines[0]
            .churn
            .as_mut()
            .unwrap()
            .topk
            .as_mut()
            .unwrap()
            .limit = 4;
        let found = compare(&other, &report, 100.0);
        assert!(found.iter().any(|r| r.metric == "topk_limit"), "{found:?}");

        // Prefix-path latency regresses with tolerance + the µs floor.
        let mut slow = topk_report();
        slow.engines[0]
            .churn
            .as_mut()
            .unwrap()
            .topk
            .as_mut()
            .unwrap()
            .prefix_p50_us = 900.0;
        let found = compare(&slow, &report, 0.15);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].metric, "topk_prefix_p50_us");
        // …but a sub-floor absolute wobble on a microsecond-scale path is
        // runner noise, not a regression.
        let mut wobble = topk_report();
        wobble.engines[0]
            .churn
            .as_mut()
            .unwrap()
            .topk
            .as_mut()
            .unwrap()
            .prefix_p50_us = 40.0;
        assert!(compare(&wobble, &report, 0.15).is_empty());

        // Serve/refill counts are interleaving-dependent: never compared.
        let mut drifted = topk_report();
        {
            let topk = drifted.engines[0]
                .churn
                .as_mut()
                .unwrap()
                .topk
                .as_mut()
                .unwrap();
            topk.prefix_serves = 1;
            topk.prefix_refills = 99;
            topk.prefix_fallbacks = 99;
        }
        assert!(compare(&drifted, &report, 0.15).is_empty());

        // Losing the whole lane regresses the limit (a silently dropped
        // measurement must not pass); a baseline without the lane is growth.
        let mut lost = topk_report();
        lost.engines[0].churn.as_mut().unwrap().topk = None;
        let found = compare(&lost, &report, 100.0);
        assert!(found.iter().any(|r| r.metric == "topk_limit"), "{found:?}");
        assert!(compare(&report, &lost, 0.15).is_empty());
    }

    #[test]
    fn v3_churn_baselines_without_topk_still_parse() {
        // Pre-top-k churn baselines carry no "topk" key at all; they must
        // stay readable and must not be compared on the unknown lane.
        let mut text = churn_report().to_json_string();
        text = text.replace("\"schema_version\": 4", "\"schema_version\": 3");
        text = text.replace("\"topk\": null", "\"legacy\": null");
        let parsed = BenchReport::from_json(&text).unwrap();
        assert_eq!(parsed.schema_version, 3);
        assert!(parsed.engines[0].churn.as_ref().unwrap().topk.is_none());
        assert!(compare(&topk_report(), &parsed, 0.15)
            .iter()
            .all(|r| !r.metric.starts_with("topk")));
    }

    #[test]
    fn v2_reports_without_maintenance_counters_still_parse() {
        // Baselines committed before incremental maintenance existed carry
        // no maintained/maintenance_us/frontier_nodes fields; they must
        // stay readable and must not be compared on the unknown metric.
        let fields = [
            "total_maintained",
            "total_full_evaluations",
            "maintained",
            "maintenance_us",
            "frontier_nodes",
        ];
        // Drop every line mentioning the fields (all are scalar lines),
        // repairing the trailing comma a removed last-field leaves behind.
        let mut lines: Vec<String> = Vec::new();
        for line in churn_report().to_json_string().lines() {
            if fields.iter().any(|f| line.contains(&format!("\"{f}\""))) {
                continue;
            }
            let closes = matches!(line.trim_start().chars().next(), Some('}') | Some(']'));
            if closes {
                if let Some(prev) = lines.last_mut() {
                    if prev.trim_end().ends_with(',') {
                        *prev = prev.trim_end().trim_end_matches(',').to_owned();
                    }
                }
            }
            lines.push(line.to_owned());
        }
        let text = lines.join("\n");
        let parsed = BenchReport::from_json(&text).unwrap();
        let churn = parsed.engines[0].churn.as_ref().unwrap();
        assert_eq!(churn.total_maintained, None);
        assert_eq!(churn.total_full_evaluations, None);
        assert!(churn.epochs.iter().all(|e| e.maintained == 0));
        assert!(churn.epochs.iter().all(|e| e.maintenance_us == 0));
        assert!(churn.epochs.iter().all(|e| e.frontier_nodes == 0));
        // A maintenance-era run against a pre-maintenance baseline is not a
        // regression on the unknown counter…
        assert!(compare(&churn_report(), &parsed, 0.15)
            .iter()
            .all(|r| r.metric != "churn_maintained"));
        // …but drift against a baseline that *did* record it is.
        let mut drifted = churn_report();
        drifted.engines[0].churn.as_mut().unwrap().total_maintained = Some(4);
        let found = compare(&drifted, &churn_report(), 0.15);
        assert!(found.iter().any(|r| r.metric == "churn_maintained"));
    }

    #[test]
    fn version_1_reports_still_parse_as_serve() {
        // A committed pre-churn baseline must stay readable.
        let mut text = sample_report().to_json_string();
        text = text.replace("\"schema_version\": 4", "\"schema_version\": 1");
        text = text.replace("\"scenario\": \"serve\",", "");
        text = text.replace("\"churn\": null,", "");
        text = text.replace("\"serve\": null,", "");
        let parsed = BenchReport::from_json(&text).unwrap();
        assert_eq!(parsed.schema_version, 1);
        assert_eq!(parsed.scenario, "serve");
        assert!(parsed.engines[0].churn.is_none());
        assert!(parsed.engines[0].serve.is_none());
    }

    #[test]
    fn version_2_reports_parse_with_no_serve_section() {
        // A committed pre-serving baseline (v2: scenario + churn, but no
        // per-engine serve section) must stay readable.
        let mut text = churn_report().to_json_string();
        text = text.replace("\"schema_version\": 4", "\"schema_version\": 2");
        text = text.replace("\"serve\": null,", "");
        let parsed = BenchReport::from_json(&text).unwrap();
        assert_eq!(parsed.schema_version, 2);
        assert!(parsed.engines[0].churn.is_some());
        assert!(parsed.engines[0].serve.is_none());
        // A serve-era run against a pre-serving baseline is growth, not a
        // regression.
        assert!(compare(&serve_report(), &parsed, 0.15)
            .iter()
            .all(|r| !r.metric.starts_with("serve")));
    }

    #[test]
    fn pre_telemetry_reports_read_back_with_defaults() {
        // Reports written before the wall/cpu split and the obs flag carry
        // neither field; renaming the keys simulates their absence (the
        // parser ignores unknown fields).
        let text = sample_report()
            .to_json_string()
            .replace("\"defactorization_cpu_ms\"", "\"legacy\"");
        let parsed = BenchReport::from_json(&text).unwrap();
        assert_eq!(
            parsed.engines[0].queries[0].phases.defactorization_cpu_ms,
            0.0
        );
        let text = serve_report()
            .to_json_string()
            .replace("\"obs\"", "\"legacy\"");
        let parsed = BenchReport::from_json(&text).unwrap();
        assert!(parsed.engines[0].serve.as_ref().unwrap().obs);
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let mut text = sample_report().to_json_string();
        text = text.replace("\"schema_version\": 4", "\"schema_version\": 999");
        let err = BenchReport::from_json(&text).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
    }

    #[test]
    fn serve_sections_round_trip() {
        let report = serve_report();
        let text = report.to_json_string();
        assert!(text.contains("\"p999_ms\""), "{text}");
        let parsed = BenchReport::from_json(&text).unwrap();
        assert_eq!(parsed.scenario, "serve-net");
        let serve = parsed.engines[0].serve.as_ref().unwrap();
        assert_eq!(serve.clients, 4);
        assert_eq!(serve.requests, 400);
        assert_eq!(serve.queries, 323);
        assert_eq!(serve.mutations, 77);
        assert_eq!(serve.shed, 3);
        assert_eq!(serve.mutation_batches, 61);
        assert_eq!(serve.coalesced_mutations, 30);
        assert_eq!(serve.subscription_updates, 44);
        assert_eq!(serve.subscription_lag_epochs, 2);
        assert_eq!(serve.final_epoch, 61);
        assert!((serve.p999_ms - 3.4).abs() < 1e-9);
        assert!((serve.shed_rate - 3.0 / 400.0).abs() < 1e-9);
        assert!(compare(&parsed, &report, 0.15).is_empty());
    }

    #[test]
    fn serve_traffic_drift_is_a_regression_but_timing_counters_are_not() {
        let baseline = serve_report();
        let mut current = serve_report();
        // Timing-dependent observability may drift freely.
        {
            let serve = current.engines[0].serve.as_mut().unwrap();
            serve.shed = 17;
            serve.shed_rate = 17.0 / 400.0;
            serve.mutation_batches = 40;
            serve.coalesced_mutations = 60;
            serve.subscription_updates = 12;
            serve.subscription_lag_epochs = 9;
            serve.final_epoch = 40;
            serve.p999_ms = 50.0;
        }
        assert!(compare(&current, &baseline, 0.15).is_empty());

        // Seed-deterministic traffic counts must not.
        current.engines[0].serve.as_mut().unwrap().queries = 322;
        current.engines[0].serve.as_mut().unwrap().mutations = 78;
        let found = compare(&current, &baseline, 100.0);
        let metrics: Vec<_> = found.iter().map(|r| r.metric).collect();
        assert!(metrics.contains(&"serve_queries"), "{metrics:?}");
        assert!(metrics.contains(&"serve_mutations"), "{metrics:?}");

        // p50 regresses like any latency (tolerance + absolute floor).
        let mut slow = serve_report();
        slow.engines[0].serve.as_mut().unwrap().p50_ms = 9.0;
        let found = compare(&slow, &baseline, 0.15);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].metric, "serve_p50_ms");

        // Losing the whole serve section regresses every traffic count.
        let mut lost = serve_report();
        lost.engines[0].serve = None;
        let found = compare(&lost, &baseline, 100.0);
        assert_eq!(
            found
                .iter()
                .filter(|r| r.metric.starts_with("serve"))
                .count(),
            4
        );
    }

    #[test]
    fn churn_counter_drift_is_a_regression() {
        let baseline = churn_report();
        let mut current = churn_report();
        assert!(compare(&current, &baseline, 0.15).is_empty());
        current.engines[0]
            .churn
            .as_mut()
            .unwrap()
            .total_invalidations = 8;
        current.engines[0].churn.as_mut().unwrap().total_compactions = 0;
        let found = compare(&current, &baseline, 100.0);
        let metrics: Vec<_> = found.iter().map(|r| r.metric).collect();
        assert!(metrics.contains(&"churn_invalidations"), "{metrics:?}");
        assert!(metrics.contains(&"churn_compactions"), "{metrics:?}");

        // Losing the whole churn section regresses every churn metric
        // (including the maintenance counter the baseline recorded).
        current.engines[0].churn = None;
        let found = compare(&current, &baseline, 100.0);
        assert_eq!(
            found
                .iter()
                .filter(|r| r.metric.starts_with("churn"))
                .count(),
            4
        );
        // The reverse (baseline without churn, current with) is growth.
        assert!(compare(
            &baseline,
            &{
                let mut b = churn_report();
                b.engines[0].churn = None;
                b
            },
            0.15
        )
        .iter()
        .all(|r| !r.metric.starts_with("churn")));
    }

    #[test]
    fn latency_regressions_respect_tolerance_and_floor() {
        let baseline = sample_report();
        let mut current = sample_report();
        // 10% slower with 15% tolerance: fine.
        current.engines[0].queries[0].p50_ms = 2.2;
        assert!(compare(&current, &baseline, 0.15).is_empty());
        // 100% slower: regression (and well past the absolute floor).
        current.engines[0].queries[0].p50_ms = 4.0;
        let found = compare(&current, &baseline, 0.15);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].metric, "p50_ms");
        assert!(found[0].to_string().contains("CQS-1"));
        // Huge relative slowdown on a microsecond-scale query: under the
        // absolute floor, so not a regression.
        let mut tiny_base = sample_report();
        tiny_base.engines[0].queries[0].p50_ms = 0.01;
        let mut tiny_cur = sample_report();
        tiny_cur.engines[0].queries[0].p50_ms = 0.05;
        assert!(compare(&tiny_cur, &tiny_base, 0.15).is_empty());
    }

    #[test]
    fn count_drift_is_a_regression_regardless_of_tolerance() {
        let baseline = sample_report();
        let mut current = sample_report();
        current.engines[0].queries[0].embeddings = 1215;
        let found = compare(&current, &baseline, 100.0);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].metric, "embeddings");
    }

    #[test]
    fn qps_and_missing_entries_regress() {
        let baseline = sample_report();
        let mut current = sample_report();
        current.engines[0].qps = 100.0;
        let found = compare(&current, &baseline, 0.15);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].metric, "qps");

        let mut empty = sample_report();
        empty.engines[0].queries.clear();
        let found = compare(&empty, &baseline, 0.15);
        assert!(found.iter().any(|r| r.metric == "missing"));

        // A *grown* workload (baseline misses entries) is not a regression.
        assert!(compare(&baseline, &empty, 0.15).is_empty());
    }

    #[test]
    fn tolerance_parsing() {
        assert_eq!(parse_tolerance("15%"), Ok(0.15));
        assert_eq!(parse_tolerance("0.15"), Ok(0.15));
        assert_eq!(parse_tolerance("900%"), Ok(9.0));
        assert!(parse_tolerance("abc").is_err());
        assert!(parse_tolerance("-5%").is_err());
        // A bare "15" is almost certainly a forgotten %; never read it as
        // 1500% slack.
        let err = parse_tolerance("15").unwrap_err();
        assert!(err.contains("15%"), "suggests the percent form: {err}");
    }

    #[test]
    fn vanished_answer_graph_measurement_is_a_regression() {
        let baseline = sample_report();
        let mut current = sample_report();
        current.engines[0].queries[0].answer_graph_edges = None;
        current.engines[0].queries[0].ag_over_embeddings = None;
        let found = compare(&current, &baseline, 100.0);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].metric, "answer_graph_edges");
        // The reverse (baseline has no |AG|, current gained one) is growth,
        // not regression.
        assert!(compare(&baseline, &current, 0.15).is_empty());
    }
}

//! The machine-readable `wfbench` report: the `BENCH_*.json` schema, its
//! renderer/parser, and baseline regression comparison.
//!
//! # Schema (version 1)
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "dataset": "tiny",          // DatasetSize name
//!   "store": "csr",             // graph storage backend (csr / map)
//!   "triples": 4100,            // dataset size actually generated
//!   "threads": 4,               // closed-loop driver threads
//!   "iterations": 5,            // workload passes per thread
//!   "workload": "full",         // workload name (20 queries for "full")
//!   "engines": [ {
//!     "engine": "wireframe",
//!     "total_queries": 400,     // queries issued across all threads
//!     "wall_ms": 123.4,         // driver wall-clock for this engine
//!     "qps": 3241.5,            // total_queries / wall seconds
//!     "cache_hits": 396,        // Session prepared-plan cache counters
//!     "cache_misses": 4,
//!     "queries": [ {
//!       "name": "CQS-1",
//!       "shape": "snowflake",
//!       "samples": 20,          // measured latencies (threads × iterations)
//!       "p50_ms": 0.8, "p95_ms": 1.1, "p99_ms": 1.4, "mean_ms": 0.9,
//!       "phases": {             // mean per-phase breakdown, milliseconds
//!         "planning_ms": 0.0, "answer_graph_ms": 0.5,
//!         "edge_burnback_ms": 0.0, "defactorization_ms": 0.3,
//!         "execution_ms": 0.0
//!       },
//!       "embeddings": 1216,            // |Embeddings|
//!       "answer_graph_edges": 48,      // |AG|; null for non-factorizing engines
//!       "ag_over_embeddings": 0.039    // |AG| / |Embeddings|; null likewise
//!     } ]
//!   } ]
//! }
//! ```
//!
//! All latencies are milliseconds (floats); all counts are exact integers.
//! `ag_over_embeddings` is the paper's factorization claim in ratio form:
//! well below 1.0 means the answer graph is much smaller than the embedding
//! set it represents.

use serde::json::{self, Value};
use serde::Serialize;

/// Version stamp for `BENCH_*.json`; bump when the shape changes.
pub const SCHEMA_VERSION: u64 = 1;

/// Mean per-phase latency breakdown, in milliseconds. Factorized phases are
/// zero for single-pass engines and vice versa (mirrors
/// [`wireframe::Timings`]).
#[derive(Debug, Clone, Default, Serialize)]
pub struct PhaseBreakdown {
    /// Planning (Edgifier + Triangulator).
    pub planning_ms: f64,
    /// Phase one: answer-graph generation.
    pub answer_graph_ms: f64,
    /// Optional edge burnback.
    pub edge_burnback_ms: f64,
    /// Phase two: embedding generation.
    pub defactorization_ms: f64,
    /// Single-pass execution (non-factorized engines).
    pub execution_ms: f64,
}

/// Measured statistics of one query on one engine.
#[derive(Debug, Clone, Serialize)]
pub struct QueryReport {
    /// Query name (`CQC-1` … `CQD-5`).
    pub name: String,
    /// Query shape (`chain`, `star`, `snowflake`, `cycle`).
    pub shape: String,
    /// Number of latency samples behind the percentiles.
    pub samples: usize,
    /// Median latency.
    pub p50_ms: f64,
    /// 95th-percentile latency.
    pub p95_ms: f64,
    /// 99th-percentile latency.
    pub p99_ms: f64,
    /// Mean latency.
    pub mean_ms: f64,
    /// Mean per-phase breakdown.
    pub phases: PhaseBreakdown,
    /// Number of embeddings (identical across engines, asserted by the driver).
    pub embeddings: u64,
    /// Answer-graph size |AG|; `None` for engines that do not factorize.
    pub answer_graph_edges: Option<u64>,
    /// |AG| / |Embeddings| — the paper's factorization gap (small is good);
    /// `None` for engines that do not factorize.
    pub ag_over_embeddings: Option<f64>,
}

/// One engine's closed-loop run over the whole workload.
#[derive(Debug, Clone, Serialize)]
pub struct EngineRun {
    /// Registry name of the engine.
    pub engine: String,
    /// Queries issued across all driver threads.
    pub total_queries: u64,
    /// Wall-clock time of the closed loop.
    pub wall_ms: f64,
    /// Aggregate throughput: `total_queries` / wall seconds.
    pub qps: f64,
    /// Prepared-plan cache hits observed by the serving `Session`.
    pub cache_hits: u64,
    /// Prepared-plan cache misses observed by the serving `Session`.
    pub cache_misses: u64,
    /// Per-query statistics, in workload order.
    pub queries: Vec<QueryReport>,
}

/// A complete `wfbench` run: the `BENCH_*.json` document.
#[derive(Debug, Clone, Serialize)]
pub struct BenchReport {
    /// [`SCHEMA_VERSION`].
    pub schema_version: u64,
    /// Dataset size name (`tiny` / `small` / `benchmark`).
    pub dataset: String,
    /// Graph storage backend the run was indexed with (`csr` / `map`).
    /// Reports written before the field existed read back as `csr`.
    pub store: String,
    /// Triples in the generated dataset.
    pub triples: u64,
    /// Closed-loop driver threads.
    pub threads: usize,
    /// Workload passes per thread.
    pub iterations: usize,
    /// Workload name (`full`, `table1`, `chains`, `stars`).
    pub workload: String,
    /// One run per measured engine.
    pub engines: Vec<EngineRun>,
}

impl BenchReport {
    /// Renders the report as indented JSON (the `BENCH_*.json` format).
    pub fn to_json_string(&self) -> String {
        json::to_string_pretty(self)
    }

    /// Parses a report back from JSON, for `--baseline` comparison.
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let doc = json::from_str(text).map_err(|e| e.to_string())?;
        let version = field_u64(&doc, "schema_version")?;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {version} (this binary reads {SCHEMA_VERSION})"
            ));
        }
        Ok(BenchReport {
            schema_version: version,
            dataset: field_str(&doc, "dataset")?,
            store: doc
                .get("store")
                .and_then(Value::as_str)
                .unwrap_or("csr")
                .to_owned(),
            triples: field_u64(&doc, "triples")?,
            threads: field_u64(&doc, "threads")? as usize,
            iterations: field_u64(&doc, "iterations")? as usize,
            workload: field_str(&doc, "workload")?,
            engines: field_array(&doc, "engines")?
                .iter()
                .map(engine_from_json)
                .collect::<Result<_, _>>()?,
        })
    }
}

fn engine_from_json(doc: &Value) -> Result<EngineRun, String> {
    Ok(EngineRun {
        engine: field_str(doc, "engine")?,
        total_queries: field_u64(doc, "total_queries")?,
        wall_ms: field_f64(doc, "wall_ms")?,
        qps: field_f64(doc, "qps")?,
        cache_hits: field_u64(doc, "cache_hits")?,
        cache_misses: field_u64(doc, "cache_misses")?,
        queries: field_array(doc, "queries")?
            .iter()
            .map(query_from_json)
            .collect::<Result<_, _>>()?,
    })
}

fn query_from_json(doc: &Value) -> Result<QueryReport, String> {
    let phases = doc
        .get("phases")
        .ok_or_else(|| "query report is missing \"phases\"".to_owned())?;
    Ok(QueryReport {
        name: field_str(doc, "name")?,
        shape: field_str(doc, "shape")?,
        samples: field_u64(doc, "samples")? as usize,
        p50_ms: field_f64(doc, "p50_ms")?,
        p95_ms: field_f64(doc, "p95_ms")?,
        p99_ms: field_f64(doc, "p99_ms")?,
        mean_ms: field_f64(doc, "mean_ms")?,
        phases: PhaseBreakdown {
            planning_ms: field_f64(phases, "planning_ms")?,
            answer_graph_ms: field_f64(phases, "answer_graph_ms")?,
            edge_burnback_ms: field_f64(phases, "edge_burnback_ms")?,
            defactorization_ms: field_f64(phases, "defactorization_ms")?,
            execution_ms: field_f64(phases, "execution_ms")?,
        },
        embeddings: field_u64(doc, "embeddings")?,
        answer_graph_edges: doc.get("answer_graph_edges").and_then(Value::as_u64),
        ag_over_embeddings: doc.get("ag_over_embeddings").and_then(Value::as_f64),
    })
}

fn field<'a>(doc: &'a Value, name: &str) -> Result<&'a Value, String> {
    doc.get(name)
        .ok_or_else(|| format!("report is missing field {name:?}"))
}

fn field_str(doc: &Value, name: &str) -> Result<String, String> {
    field(doc, name)?
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| format!("field {name:?} is not a string"))
}

fn field_u64(doc: &Value, name: &str) -> Result<u64, String> {
    field(doc, name)?
        .as_u64()
        .ok_or_else(|| format!("field {name:?} is not an unsigned integer"))
}

fn field_f64(doc: &Value, name: &str) -> Result<f64, String> {
    field(doc, name)?
        .as_f64()
        .ok_or_else(|| format!("field {name:?} is not a number"))
}

fn field_array<'a>(doc: &'a Value, name: &str) -> Result<&'a [Value], String> {
    field(doc, name)?
        .as_array()
        .ok_or_else(|| format!("field {name:?} is not an array"))
}

/// Latency differences below this absolute floor never count as regressions:
/// tiny-dataset queries answer in microseconds, where scheduler jitter alone
/// exceeds any sensible relative tolerance.
pub const LATENCY_FLOOR_MS: f64 = 0.5;

/// One regression found by [`compare`].
#[derive(Debug, Clone)]
pub struct Regression {
    /// Engine the regression was observed on.
    pub engine: String,
    /// Query name, or `*` for engine-level metrics (QPS).
    pub query: String,
    /// Which metric regressed (`p50_ms`, `qps`, `embeddings`, …).
    pub metric: &'static str,
    /// The committed baseline value.
    pub baseline: f64,
    /// The value measured by this run.
    pub current: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{}: {} regressed from {:.3} to {:.3}",
            self.engine, self.query, self.metric, self.baseline, self.current
        )
    }
}

/// Compares `current` against a committed `baseline` with a relative
/// `tolerance` (0.15 = 15% slack).
///
/// * Latency (`p50_ms`) and throughput (`qps`) regress when they are worse
///   than the baseline by more than the tolerance; latency additionally must
///   exceed [`LATENCY_FLOOR_MS`] of absolute slowdown.
/// * Result counts (`embeddings`, `answer_graph_edges`) must match exactly —
///   a drifting answer is a correctness bug, not a performance matter, so
///   tolerance never excuses it.
/// * Engine × query pairs absent from the baseline are skipped (the workload
///   is allowed to grow); pairs absent from the current run regress as
///   `missing` (a silently dropped measurement must not pass).
pub fn compare(current: &BenchReport, baseline: &BenchReport, tolerance: f64) -> Vec<Regression> {
    let mut regressions = Vec::new();
    for base_engine in &baseline.engines {
        let Some(cur_engine) = current
            .engines
            .iter()
            .find(|e| e.engine == base_engine.engine)
        else {
            regressions.push(Regression {
                engine: base_engine.engine.clone(),
                query: "*".to_owned(),
                metric: "missing",
                baseline: base_engine.total_queries as f64,
                current: 0.0,
            });
            continue;
        };
        if cur_engine.qps < base_engine.qps / (1.0 + tolerance) {
            regressions.push(Regression {
                engine: base_engine.engine.clone(),
                query: "*".to_owned(),
                metric: "qps",
                baseline: base_engine.qps,
                current: cur_engine.qps,
            });
        }
        for base_query in &base_engine.queries {
            let Some(cur_query) = cur_engine
                .queries
                .iter()
                .find(|q| q.name == base_query.name)
            else {
                regressions.push(Regression {
                    engine: base_engine.engine.clone(),
                    query: base_query.name.clone(),
                    metric: "missing",
                    baseline: base_query.embeddings as f64,
                    current: 0.0,
                });
                continue;
            };
            if cur_query.p50_ms > base_query.p50_ms * (1.0 + tolerance)
                && cur_query.p50_ms - base_query.p50_ms > LATENCY_FLOOR_MS
            {
                regressions.push(Regression {
                    engine: base_engine.engine.clone(),
                    query: base_query.name.clone(),
                    metric: "p50_ms",
                    baseline: base_query.p50_ms,
                    current: cur_query.p50_ms,
                });
            }
            if cur_query.embeddings != base_query.embeddings {
                regressions.push(Regression {
                    engine: base_engine.engine.clone(),
                    query: base_query.name.clone(),
                    metric: "embeddings",
                    baseline: base_query.embeddings as f64,
                    current: cur_query.embeddings as f64,
                });
            }
            // A baseline |AG| disappearing from the current run is itself a
            // regression (the engine stopped factorizing, or the measurement
            // was dropped) — not a pass.
            if let Some(base_ag) = base_query.answer_graph_edges {
                if cur_query.answer_graph_edges != Some(base_ag) {
                    regressions.push(Regression {
                        engine: base_engine.engine.clone(),
                        query: base_query.name.clone(),
                        metric: "answer_graph_edges",
                        baseline: base_ag as f64,
                        current: cur_query.answer_graph_edges.unwrap_or(0) as f64,
                    });
                }
            }
        }
    }
    regressions
}

/// Parses a tolerance argument: `15%` or a bare ratio like `0.15`.
///
/// A bare value above 1.0 is rejected: `--tolerance 15` almost certainly
/// means `15%`, and silently reading it as 1500% slack would disable the
/// regression gate. Use the `%` form for slack beyond 100%.
pub fn parse_tolerance(text: &str) -> Result<f64, String> {
    let (digits, percent) = match text.strip_suffix('%') {
        Some(d) => (d, true),
        None => (text, false),
    };
    let value: f64 = digits
        .trim()
        .parse()
        .map_err(|_| format!("invalid tolerance {text:?} (examples: 15%, 0.15)"))?;
    if !percent && value > 1.0 {
        return Err(format!(
            "ambiguous tolerance {text:?}: bare values are ratios (max 1.0); \
             did you mean {value}%?"
        ));
    }
    let ratio = if percent { value / 100.0 } else { value };
    if !(0.0..=100.0).contains(&ratio) {
        return Err(format!("tolerance {text:?} out of range"));
    }
    Ok(ratio)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            dataset: "tiny".into(),
            store: "csr".into(),
            triples: 4100,
            threads: 2,
            iterations: 3,
            workload: "full".into(),
            engines: vec![EngineRun {
                engine: "wireframe".into(),
                total_queries: 120,
                wall_ms: 100.0,
                qps: 1200.0,
                cache_hits: 114,
                cache_misses: 6,
                queries: vec![QueryReport {
                    name: "CQS-1".into(),
                    shape: "snowflake".into(),
                    samples: 6,
                    p50_ms: 2.0,
                    p95_ms: 3.0,
                    p99_ms: 3.5,
                    mean_ms: 2.2,
                    phases: PhaseBreakdown {
                        planning_ms: 0.1,
                        answer_graph_ms: 1.2,
                        edge_burnback_ms: 0.0,
                        defactorization_ms: 0.9,
                        execution_ms: 0.0,
                    },
                    embeddings: 1216,
                    answer_graph_edges: Some(48),
                    ag_over_embeddings: Some(48.0 / 1216.0),
                }],
            }],
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = sample_report();
        let text = report.to_json_string();
        let parsed = BenchReport::from_json(&text).unwrap();
        assert_eq!(parsed.dataset, "tiny");
        assert_eq!(parsed.store, "csr");
        assert_eq!(parsed.engines.len(), 1);
        let q = &parsed.engines[0].queries[0];
        assert_eq!(q.name, "CQS-1");
        assert_eq!(q.embeddings, 1216);
        assert_eq!(q.answer_graph_edges, Some(48));
        assert!((q.p50_ms - 2.0).abs() < 1e-9);
        assert!((q.phases.answer_graph_ms - 1.2).abs() < 1e-9);
        assert!(compare(&parsed, &report, 0.15).is_empty());
    }

    #[test]
    fn reports_without_a_store_field_read_as_csr() {
        // Baselines recorded before the store field existed must stay readable.
        let text = sample_report()
            .to_json_string()
            .replace("\"store\": \"csr\",", "");
        let parsed = BenchReport::from_json(&text).unwrap();
        assert_eq!(parsed.store, "csr");
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let mut text = sample_report().to_json_string();
        text = text.replace("\"schema_version\": 1", "\"schema_version\": 999");
        let err = BenchReport::from_json(&text).unwrap_err();
        assert!(err.contains("schema_version"), "{err}");
    }

    #[test]
    fn latency_regressions_respect_tolerance_and_floor() {
        let baseline = sample_report();
        let mut current = sample_report();
        // 10% slower with 15% tolerance: fine.
        current.engines[0].queries[0].p50_ms = 2.2;
        assert!(compare(&current, &baseline, 0.15).is_empty());
        // 100% slower: regression (and well past the absolute floor).
        current.engines[0].queries[0].p50_ms = 4.0;
        let found = compare(&current, &baseline, 0.15);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].metric, "p50_ms");
        assert!(found[0].to_string().contains("CQS-1"));
        // Huge relative slowdown on a microsecond-scale query: under the
        // absolute floor, so not a regression.
        let mut tiny_base = sample_report();
        tiny_base.engines[0].queries[0].p50_ms = 0.01;
        let mut tiny_cur = sample_report();
        tiny_cur.engines[0].queries[0].p50_ms = 0.05;
        assert!(compare(&tiny_cur, &tiny_base, 0.15).is_empty());
    }

    #[test]
    fn count_drift_is_a_regression_regardless_of_tolerance() {
        let baseline = sample_report();
        let mut current = sample_report();
        current.engines[0].queries[0].embeddings = 1215;
        let found = compare(&current, &baseline, 100.0);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].metric, "embeddings");
    }

    #[test]
    fn qps_and_missing_entries_regress() {
        let baseline = sample_report();
        let mut current = sample_report();
        current.engines[0].qps = 100.0;
        let found = compare(&current, &baseline, 0.15);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].metric, "qps");

        let mut empty = sample_report();
        empty.engines[0].queries.clear();
        let found = compare(&empty, &baseline, 0.15);
        assert!(found.iter().any(|r| r.metric == "missing"));

        // A *grown* workload (baseline misses entries) is not a regression.
        assert!(compare(&baseline, &empty, 0.15).is_empty());
    }

    #[test]
    fn tolerance_parsing() {
        assert_eq!(parse_tolerance("15%"), Ok(0.15));
        assert_eq!(parse_tolerance("0.15"), Ok(0.15));
        assert_eq!(parse_tolerance("900%"), Ok(9.0));
        assert!(parse_tolerance("abc").is_err());
        assert!(parse_tolerance("-5%").is_err());
        // A bare "15" is almost certainly a forgotten %; never read it as
        // 1500% slack.
        let err = parse_tolerance("15").unwrap_err();
        assert!(err.contains("15%"), "suggests the percent form: {err}");
    }

    #[test]
    fn vanished_answer_graph_measurement_is_a_regression() {
        let baseline = sample_report();
        let mut current = sample_report();
        current.engines[0].queries[0].answer_graph_edges = None;
        current.engines[0].queries[0].ag_over_embeddings = None;
        let found = compare(&current, &baseline, 100.0);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].metric, "answer_graph_edges");
        // The reverse (baseline has no |AG|, current gained one) is growth,
        // not regression.
        assert!(compare(&baseline, &current, 0.15).is_empty());
    }
}

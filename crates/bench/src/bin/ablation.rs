//! Ablation harness for the design choices DESIGN.md calls out:
//!
//! 1. **Planner quality** — the DP Edgifier versus a greedy planner versus
//!    evaluating the query edges as written (no cost-based planning), measured
//!    in actual edge walks of phase one.
//! 2. **Edge burnback** — answer-graph size and end-to-end time for the cyclic
//!    (diamond) queries with node burnback only (the paper's configuration)
//!    versus triangulation + edge burnback (the paper's work in progress).
//! 3. **Factorization-gap scaling** — |Embeddings| / |AG| as the planted
//!    fan-out grows, the mechanism behind the paper's headline ratios.
//! 4. **Bushy vs left-deep defactorization** — the richer phase-two plan space
//!    the paper's conclusions point to, measured by peak intermediate size.
//!
//! ```text
//! cargo run -p wireframe-bench --bin ablation --release
//! ```

use std::time::Instant;

use wireframe_bench::{build_dataset, DatasetSize};
use wireframe_core::{
    defactorize, embedding_plan, execute_bushy, plan_bushy, EvalOptions, PlannerKind,
    WireframeEngine,
};
use wireframe_datagen::{generate, table1_queries, YagoConfig};
use wireframe_query::Shape;

fn main() {
    let size = DatasetSize::from_env();
    let graph = build_dataset(size);
    eprintln!(
        "dataset: {} triples, {} predicates",
        graph.triple_count(),
        graph.predicate_count()
    );
    let queries = table1_queries(&graph).expect("workload builds");

    println!("=== Ablation 1: planner quality (phase-one edge walks) ===");
    println!(
        "{:<7} {:>14} {:>14} {:>14}",
        "query", "DP edgifier", "greedy", "as written"
    );
    for bq in &queries {
        let mut walks = Vec::new();
        for kind in [
            PlannerKind::DpLeftDeep,
            PlannerKind::Greedy,
            PlannerKind::AsWritten,
        ] {
            let engine =
                WireframeEngine::with_options(&graph, EvalOptions::default().with_planner(kind));
            let (_, stats, _) = engine.answer_graph(&bq.query).expect("phase one runs");
            walks.push(stats.edge_walks);
        }
        println!(
            "{:<7} {:>14} {:>14} {:>14}",
            bq.name, walks[0], walks[1], walks[2]
        );
    }

    println!("\n=== Ablation 2: edge burnback on the cyclic (diamond) queries ===");
    println!(
        "{:<7} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "query", "|AG| node-bb", "|AG| edge-bb", "removed", "node-bb ms", "edge-bb ms"
    );
    for bq in queries.iter().filter(|q| q.shape == Shape::Cycle) {
        let plain_engine = WireframeEngine::new(&graph);
        let t = Instant::now();
        let plain = plain_engine.execute(&bq.query).expect("evaluates");
        let plain_ms = t.elapsed().as_secs_f64() * 1e3;

        let eb_engine =
            WireframeEngine::with_options(&graph, EvalOptions::default().with_edge_burnback());
        let t = Instant::now();
        let burned = eb_engine.execute(&bq.query).expect("evaluates");
        let eb_ms = t.elapsed().as_secs_f64() * 1e3;

        assert!(plain.embeddings().same_answer(burned.embeddings()));
        println!(
            "{:<7} {:>12} {:>12} {:>12} {:>12.1} {:>12.1}",
            bq.name,
            plain.answer_graph_size(),
            burned.answer_graph_size(),
            burned.edge_burnback().edges_removed,
            plain_ms,
            eb_ms
        );
    }

    println!("\n=== Ablation 3: bushy vs left-deep defactorization (peak intermediate tuples) ===");
    println!(
        "{:<7} {:>14} {:>14} {:>12}",
        "query", "left-deep peak", "bushy peak", "tree depth"
    );
    for bq in &queries {
        let engine = WireframeEngine::new(&graph);
        let (ag, _, _) = engine.answer_graph(&bq.query).expect("phase one runs");
        let order = embedding_plan(&bq.query, &ag);
        let (_, ld_stats) = defactorize(&bq.query, &ag, &order).expect("left-deep runs");
        let plan = plan_bushy(&bq.query, &ag).expect("bushy plans");
        let (_, bushy_stats) = execute_bushy(&bq.query, &ag, &plan).expect("bushy runs");
        println!(
            "{:<7} {:>14} {:>14} {:>12}",
            bq.name,
            ld_stats.peak_intermediate,
            bushy_stats.peak_intermediate,
            plan.root.depth()
        );
    }

    println!("\n=== Ablation 4: factorization gap vs planted fan-out (snowflakes) ===");
    println!(
        "{:>8} {:>10} {:>14} {:>10}",
        "fan-out", "|AG|", "|Embeddings|", "ratio"
    );
    for fanout in [1usize, 2, 3, 4, 6] {
        let mut cfg = YagoConfig::small();
        cfg.snowflake_leaf_fanout = fanout;
        let g = generate(&cfg);
        let wf = WireframeEngine::new(&g);
        let mut ag_total = 0usize;
        let mut emb_total = 0usize;
        for bq in table1_queries(&g).expect("workload builds") {
            if bq.shape != Shape::Snowflake {
                continue;
            }
            let out = wf.execute(&bq.query).expect("evaluates");
            ag_total += out.answer_graph_size();
            emb_total += out.embedding_count();
        }
        println!(
            "{:>8} {:>10} {:>14} {:>9.0}x",
            fanout,
            ag_total,
            emb_total,
            emb_total as f64 / ag_total.max(1) as f64
        );
    }
}

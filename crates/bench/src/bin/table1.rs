//! Regenerates the paper's Table 1: query execution time for the ten
//! benchmark queries on Wireframe and the baseline engines, plus the answer
//! graph and embedding counts.
//!
//! ```text
//! cargo run -p wireframe-bench --bin table1 --release            # small dataset
//! WIREFRAME_BENCH_SIZE=benchmark cargo run -p wireframe-bench --bin table1 --release
//! ```

use std::time::Instant;

use wireframe_bench::{build_dataset, format_table1, measure_table1, DatasetSize};

fn main() {
    let size = DatasetSize::from_env();
    eprintln!("building synthetic YAGO-like dataset ({size:?}, set WIREFRAME_BENCH_SIZE=tiny|small|benchmark to change)…");
    let t = Instant::now();
    let graph = build_dataset(size);
    eprintln!(
        "dataset ready: {} triples, {} predicates, {} nodes ({:?})",
        graph.triple_count(),
        graph.predicate_count(),
        graph.node_count(),
        t.elapsed()
    );

    eprintln!("running the ten Table 1 queries (5 repeats each, warm-cache average)…");
    let rows = measure_table1(&graph, 5);

    println!("\n=== Table 1 (reproduced): query execution time and factorization ===");
    println!("engines: WF = Wireframe; REL = hash-join baseline (PG/VT proxy); SM = sort-merge baseline (MD proxy); EXPL = graph exploration (NJ proxy)\n");
    print!("{}", format_table1(&rows));

    let snow: Vec<_> = rows.iter().filter(|r| !r.cyclic).collect();
    let diam: Vec<_> = rows.iter().filter(|r| r.cyclic).collect();
    let avg = |xs: &[&wireframe_bench::Table1Row], f: fn(&wireframe_bench::Table1Row) -> f64| {
        xs.iter().map(|r| f(r)).sum::<f64>() / xs.len().max(1) as f64
    };

    println!("\nsummary:");
    println!(
        "  snowflakes: WF {:.1} ms vs REL {:.1} ms ({:.1}x), SM {:.1} ms ({:.1}x), EXPL {:.1} ms; mean |Emb|/|AG| = {:.0}x",
        avg(&snow, |r| r.wf_ms),
        avg(&snow, |r| r.relational_ms),
        avg(&snow, |r| r.relational_ms) / avg(&snow, |r| r.wf_ms).max(1e-9),
        avg(&snow, |r| r.sortmerge_ms),
        avg(&snow, |r| r.sortmerge_ms) / avg(&snow, |r| r.wf_ms).max(1e-9),
        avg(&snow, |r| r.exploration_ms),
        avg(&snow, |r| r.factorization_ratio()),
    );
    println!(
        "  diamonds:   WF {:.1} ms vs REL {:.1} ms ({:.1}x), SM {:.1} ms ({:.1}x), EXPL {:.1} ms; mean |Emb|/|AG| = {:.0}x",
        avg(&diam, |r| r.wf_ms),
        avg(&diam, |r| r.relational_ms),
        avg(&diam, |r| r.relational_ms) / avg(&diam, |r| r.wf_ms).max(1e-9),
        avg(&diam, |r| r.sortmerge_ms),
        avg(&diam, |r| r.sortmerge_ms) / avg(&diam, |r| r.wf_ms).max(1e-9),
        avg(&diam, |r| r.exploration_ms),
        avg(&diam, |r| r.factorization_ratio()),
    );
    println!(
        "  total edge walks: WF {} vs exploration {}",
        rows.iter().map(|r| r.wf_edge_walks).sum::<u64>(),
        rows.iter().map(|r| r.exploration_edge_walks).sum::<u64>(),
    );
}

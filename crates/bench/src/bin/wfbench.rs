//! `wfbench` — the concurrent closed-loop benchmark driver with
//! machine-readable output and baseline regression checking.
//!
//! ```text
//! wfbench [options]
//!
//! options:
//!   --size tiny|small|benchmark|large   dataset size (default: WIREFRAME_BENCH_SIZE or small)
//!   --threads <N>                 closed-loop driver threads (default: auto, capped at 8);
//!                                 also passed to the wireframe engine's parallel
//!                                 phase-two defactorizer
//!   --iterations <N>              workload passes per thread (default 5)
//!   --engines <a,b,…>             engines to measure (default: every registered engine)
//!   --workload full|table1|chains|stars   query mix (default full = all 20)
//!   --store csr|map|delta         graph storage backend to index the dataset with
//!                                 (default csr; churn is cheap only on delta)
//!   --scenario serve|churn|serve-net|sharded|cyclic
//!                                 static serving loop (default); dynamic-graph
//!                                 churn: per epoch, one seeded mutation batch then
//!                                 the read workload, reporting per-epoch QPS and
//!                                 cache invalidation/compaction counters;
//!                                 serve-net: closed-loop clients over real TCP
//!                                 sockets against a wireframe-serve server, mixed
//!                                 read/write traffic with one subscriber, reporting
//!                                 p50/p95/p99/p999 tails, shed-rate, batching and
//!                                 subscription-lag counters; sharded:
//!                                 scatter-gather serving over --shards vertex
//!                                 partitions, every answer cross-checked exactly
//!                                 against an unsharded reference session before
//!                                 and after a seeded mutation batch; or cyclic:
//!                                 the worst-case-optimal engine vs triangulation
//!                                 on a triangle-heavy instance, answers
//!                                 cross-checked bit-for-bit before and after a
//!                                 seeded mutation batch
//!   --shards <N>                  sharded: number of vertex partitions (default 2)
//!   --maintenance incremental|reeval
//!                                 mutation policy for cached plans (default
//!                                 incremental): maintain retained answer-graph
//!                                 views in O(delta), or evict intersecting plans
//!                                 and re-evaluate from scratch (the pre-maintenance
//!                                 behavior, kept for comparison)
//!   --epochs <N>                  churn: measured epochs (default 4)
//!   --batch <N>                   churn: mutation ops per epoch (default 64)
//!   --insert-fraction <F>         churn: insert share of each batch, 0..=1 (default 0.6)
//!   --churn-seed <N>              churn / serve-net: traffic-mix PRNG seed
//!                                 (default 12648430)
//!   --limit <K>                   churn: cap every read at the first K rows of
//!                                 the canonical row order, pushing the limit
//!                                 into evaluation so retained views answer
//!                                 from their maintained top-k prefixes in
//!                                 O(K); the report gains a topk section
//!                                 comparing prefix-served against
//!                                 full-defactorization latency (default 0 =
//!                                 unlimited)
//!   --clients <N>                 serve-net: closed-loop TCP client threads (default 4)
//!   --requests <N>                serve-net: requests per client (default 100)
//!   --write-fraction <F>          serve-net: mutation share of the mix, 0..=1
//!                                 (default 0.2)
//!   --queue-depth <N>             serve-net: admission-queue bound before shedding
//!                                 (default 128; 0 sheds every read — overload drill)
//!   --compaction-threshold <F>    delta store: overlay fraction that triggers
//!                                 compaction (default 0.25; lower it to force
//!                                 compaction cycles within a short churn run)
//!   --edge-burnback               enable triangulation + edge burnback (wireframe only)
//!   --obs on|off                  telemetry histograms/spans (default on; counters
//!                                 stay live either way). `--scenario serve-net
//!                                 --obs off` is the instrumentation-overhead A/B:
//!                                 compare its report against an --obs on baseline
//!   --metrics-out <path>          serve-net: scrape the server's Prometheus
//!                                 endpoint at the end of the run and write the
//!                                 text rendering here
//!   --json <path>                 write the BENCH_*.json report here
//!   --baseline <path>             compare against a previous report …
//!   --tolerance <P%>              … allowing P% slack on latency/QPS (default 15%)
//!
//! exit codes: 0 ok · 1 regression against the baseline · 2 usage or runtime error
//! ```
//!
//! The JSON schema is documented in `wireframe_bench::report` and in the
//! README's Benchmarking section. Counts (|AG|, |Embeddings|) and seeded
//! churn counters must match the baseline exactly; latency and QPS regress
//! only beyond the tolerance.

use std::process::ExitCode;
use std::sync::Arc;

use wireframe::{
    core::auto_threads, EngineConfig, QueryExecutor, Session, SessionConfig, StoreKind,
};
use wireframe_bench::churn::{run_churn, ChurnOptions};
use wireframe_bench::cyclic::{
    cyclic_dataset, cyclic_workload, run_cyclic, CyclicOptions, DATASET_SEED,
};
use wireframe_bench::driver::run_engine;
use wireframe_bench::report::{
    compare, parse_tolerance, BenchReport, PhaseBreakdown, SCHEMA_VERSION,
};
use wireframe_bench::servenet::{run_serve_net, ServeNetOptions};
use wireframe_bench::sharded::{run_sharded, ShardedOptions};
use wireframe_bench::{build_dataset_with_store, DatasetSize};
use wireframe_datagen::{chain_queries, full_workload, star_queries, table1_queries};
use wireframe_serve::ServeConfig;

#[derive(Debug)]
struct Options {
    size: DatasetSize,
    threads: usize,
    iterations: usize,
    engines: Option<Vec<String>>,
    workload: String,
    store: StoreKind,
    scenario: String,
    maintenance: bool,
    epochs: usize,
    batch: usize,
    insert_fraction: f64,
    churn_seed: u64,
    limit: usize,
    clients: usize,
    requests: usize,
    write_fraction: f64,
    queue_depth: usize,
    shards: usize,
    compaction_threshold: Option<f64>,
    edge_burnback: bool,
    obs: bool,
    metrics_out: Option<String>,
    json: Option<String>,
    baseline: Option<String>,
    tolerance: Option<f64>,
}

fn usage() -> &'static str {
    "usage: wfbench [--size tiny|small|benchmark|large] [--threads N] [--iterations N] \
     [--engines a,b,…] [--workload full|table1|chains|stars] [--store csr|map|delta] \
     [--scenario serve|churn|serve-net|sharded|cyclic [--epochs N] [--batch N] [--insert-fraction F] \
     [--churn-seed N] [--limit K] [--clients N] [--requests N] [--write-fraction F] [--queue-depth N] \
     [--shards N]] [--maintenance incremental|reeval] [--compaction-threshold F] \
     [--edge-burnback] [--obs on|off] [--metrics-out PATH] [--json PATH] \
     [--baseline PATH [--tolerance P%]]"
}

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Options, String> {
    // Resolved lazily after the flags: an explicit --size must win before
    // the environment variable gets a chance to reject the process.
    let mut size: Option<DatasetSize> = None;
    let defaults = ChurnOptions::default();
    let serve_defaults = ServeNetOptions::default();
    let mut options = Options {
        size: DatasetSize::Small,
        threads: auto_threads(),
        iterations: 5,
        engines: None,
        workload: "full".to_owned(),
        store: StoreKind::default(),
        scenario: "serve".to_owned(),
        maintenance: true,
        epochs: defaults.epochs,
        batch: defaults.batch,
        insert_fraction: defaults.insert_fraction,
        churn_seed: defaults.seed,
        limit: defaults.limit,
        clients: serve_defaults.clients,
        requests: serve_defaults.requests,
        write_fraction: serve_defaults.write_fraction,
        queue_depth: serve_defaults.config.queue_depth,
        shards: ShardedOptions::default().shards,
        compaction_threshold: None,
        edge_burnback: false,
        obs: true,
        metrics_out: None,
        json: None,
        baseline: None,
        tolerance: None,
    };
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--size" => size = Some(DatasetSize::parse(&value(&mut args, "--size")?)?),
            "--threads" => {
                options.threads = value(&mut args, "--threads")?
                    .parse()
                    .map_err(|_| "--threads must be a positive integer".to_owned())?;
                if options.threads == 0 {
                    return Err("--threads must be at least 1".to_owned());
                }
            }
            "--iterations" => {
                options.iterations = value(&mut args, "--iterations")?
                    .parse()
                    .map_err(|_| "--iterations must be a positive integer".to_owned())?;
                if options.iterations == 0 {
                    return Err("--iterations must be at least 1".to_owned());
                }
            }
            "--engines" => {
                options.engines = Some(
                    value(&mut args, "--engines")?
                        .split(',')
                        .map(|s| s.trim().to_owned())
                        .filter(|s| !s.is_empty())
                        .collect(),
                )
            }
            "--workload" => {
                let name = value(&mut args, "--workload")?;
                if !["full", "table1", "chains", "stars"].contains(&name.as_str()) {
                    return Err(format!(
                        "unknown workload {name:?} (accepted: full, table1, chains, stars)"
                    ));
                }
                options.workload = name;
            }
            "--store" => options.store = StoreKind::parse(&value(&mut args, "--store")?)?,
            "--scenario" => {
                let name = value(&mut args, "--scenario")?;
                if !["serve", "churn", "serve-net", "sharded", "cyclic"].contains(&name.as_str()) {
                    return Err(format!(
                        "unknown scenario {name:?} \
                         (accepted: serve, churn, serve-net, sharded, cyclic)"
                    ));
                }
                options.scenario = name;
            }
            "--maintenance" => {
                let policy = value(&mut args, "--maintenance")?;
                options.maintenance = match policy.as_str() {
                    "incremental" => true,
                    "reeval" => false,
                    other => {
                        return Err(format!(
                            "unknown maintenance policy {other:?} (accepted: incremental, reeval)"
                        ))
                    }
                };
            }
            "--epochs" => {
                options.epochs = value(&mut args, "--epochs")?
                    .parse()
                    .map_err(|_| "--epochs must be a positive integer".to_owned())?;
                if options.epochs == 0 {
                    return Err("--epochs must be at least 1".to_owned());
                }
            }
            "--batch" => {
                options.batch = value(&mut args, "--batch")?
                    .parse()
                    .map_err(|_| "--batch must be a positive integer".to_owned())?;
                if options.batch == 0 {
                    return Err("--batch must be at least 1".to_owned());
                }
            }
            "--insert-fraction" => {
                options.insert_fraction = value(&mut args, "--insert-fraction")?
                    .parse()
                    .map_err(|_| "--insert-fraction must be a number in 0..=1".to_owned())?;
                if !(0.0..=1.0).contains(&options.insert_fraction) {
                    return Err("--insert-fraction must be within 0..=1".to_owned());
                }
            }
            "--churn-seed" => {
                options.churn_seed = value(&mut args, "--churn-seed")?
                    .parse()
                    .map_err(|_| "--churn-seed must be an unsigned integer".to_owned())?;
            }
            "--limit" => {
                options.limit = value(&mut args, "--limit")?
                    .parse()
                    .map_err(|_| "--limit must be a positive integer".to_owned())?;
                if options.limit == 0 {
                    return Err("--limit must be at least 1 (omit it for unlimited)".to_owned());
                }
            }
            "--clients" => {
                options.clients = value(&mut args, "--clients")?
                    .parse()
                    .map_err(|_| "--clients must be a positive integer".to_owned())?;
                if options.clients == 0 {
                    return Err("--clients must be at least 1".to_owned());
                }
            }
            "--requests" => {
                options.requests = value(&mut args, "--requests")?
                    .parse()
                    .map_err(|_| "--requests must be a positive integer".to_owned())?;
                if options.requests == 0 {
                    return Err("--requests must be at least 1".to_owned());
                }
            }
            "--write-fraction" => {
                options.write_fraction = value(&mut args, "--write-fraction")?
                    .parse()
                    .map_err(|_| "--write-fraction must be a number in 0..=1".to_owned())?;
                if !(0.0..=1.0).contains(&options.write_fraction) {
                    return Err("--write-fraction must be within 0..=1".to_owned());
                }
            }
            "--queue-depth" => {
                options.queue_depth = value(&mut args, "--queue-depth")?
                    .parse()
                    .map_err(|_| "--queue-depth must be a non-negative integer".to_owned())?;
            }
            "--shards" => {
                options.shards = value(&mut args, "--shards")?
                    .parse()
                    .map_err(|_| "--shards must be a positive integer".to_owned())?;
                if options.shards == 0 {
                    return Err("--shards must be at least 1".to_owned());
                }
            }
            "--compaction-threshold" => {
                let threshold: f64 = value(&mut args, "--compaction-threshold")?
                    .parse()
                    .map_err(|_| {
                        "--compaction-threshold must be a non-negative number".to_owned()
                    })?;
                if !threshold.is_finite() || threshold < 0.0 {
                    return Err("--compaction-threshold must be a non-negative number".to_owned());
                }
                options.compaction_threshold = Some(threshold);
            }
            "--edge-burnback" => options.edge_burnback = true,
            "--obs" => {
                options.obs = match value(&mut args, "--obs")?.as_str() {
                    "on" => true,
                    "off" => false,
                    _ => return Err("--obs must be on or off".to_owned()),
                }
            }
            "--metrics-out" => options.metrics_out = Some(value(&mut args, "--metrics-out")?),
            "--json" => options.json = Some(value(&mut args, "--json")?),
            "--baseline" => options.baseline = Some(value(&mut args, "--baseline")?),
            "--tolerance" => {
                options.tolerance = Some(parse_tolerance(&value(&mut args, "--tolerance")?)?)
            }
            "--help" | "-h" => return Err(usage().to_owned()),
            other => return Err(format!("unknown option {other}\n{}", usage())),
        }
    }
    if options.tolerance.is_some() && options.baseline.is_none() {
        return Err("--tolerance only applies together with --baseline".to_owned());
    }
    if options.metrics_out.is_some() && options.scenario != "serve-net" {
        return Err("--metrics-out only applies to --scenario serve-net".to_owned());
    }
    if options.limit > 0 && options.scenario != "churn" {
        return Err("--limit only applies to --scenario churn".to_owned());
    }
    options.size = size.unwrap_or_else(DatasetSize::from_env);
    Ok(options)
}

/// Reads and parses the `--baseline` report up front, so a bad path or file
/// fails fast (exit 2) instead of after the whole benchmark has run.
fn load_baseline(
    options: &Options,
) -> Result<Option<wireframe_bench::report::BenchReport>, String> {
    let Some(path) = &options.baseline else {
        return Ok(None);
    };
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    BenchReport::from_json(&text)
        .map(Some)
        .map_err(|e| format!("cannot parse baseline {path}: {e}"))
}

fn run() -> Result<bool, String> {
    let options = parse_args(std::env::args().skip(1))?;
    let baseline = load_baseline(&options)?;

    if options.scenario == "cyclic" {
        // The lane builds its own triangle-heavy instance instead of the
        // Yago dataset: the generic-join/triangulation gap shows on skewed
        // cyclic structure the paper-workload generator does not plant.
        return run_cyclic_scenario(&options, baseline.as_ref());
    }

    let mut graph = build_dataset_with_store(options.size, options.store);
    if let Some(threshold) = options.compaction_threshold {
        graph = graph.with_compaction_threshold(threshold);
    }
    let graph = Arc::new(graph);
    eprintln!(
        "dataset {}: {} triples, {} predicates · {} store · {} threads × {} iterations",
        options.size.name(),
        graph.triple_count(),
        graph.predicate_count(),
        options.store.name(),
        options.threads,
        options.iterations
    );

    let workload = match options.workload.as_str() {
        "table1" => table1_queries(&graph),
        "chains" => chain_queries(&graph),
        "stars" => star_queries(&graph),
        _ => full_workload(&graph),
    }
    .map_err(|e| format!("workload does not build: {e}"))?;

    let mut config = EngineConfig::default()
        .with_threads(options.threads)
        .with_store(options.store);
    if options.edge_burnback {
        config = config.with_edge_burnback();
    }

    let registry = wireframe::default_registry();
    let engine_names: Vec<String> = match &options.engines {
        Some(names) => names.clone(),
        None => registry.names().iter().map(|&n| n.to_owned()).collect(),
    };

    let mut report = BenchReport {
        schema_version: SCHEMA_VERSION,
        dataset: options.size.name().to_owned(),
        store: options.store.name().to_owned(),
        scenario: options.scenario.clone(),
        triples: graph.triple_count() as u64,
        threads: options.threads,
        iterations: options.iterations,
        workload: options.workload.clone(),
        engines: Vec::new(),
    };
    let churn_options = ChurnOptions {
        epochs: options.epochs,
        batch: options.batch,
        insert_fraction: options.insert_fraction,
        threads: options.threads,
        iterations: options.iterations,
        seed: options.churn_seed,
        limit: options.limit,
    };
    let servenet_options = ServeNetOptions {
        clients: options.clients,
        requests: options.requests,
        write_fraction: options.write_fraction,
        seed: options.churn_seed,
        config: ServeConfig {
            queue_depth: options.queue_depth,
            ..ServeConfig::default()
        },
        obs: options.obs,
        metrics_out: options.metrics_out.clone(),
        ..ServeNetOptions::default()
    };

    if options.scenario == "sharded" {
        // One lane, wireframe only: the cluster merges factorized answer
        // graphs, which only the wireframe engine produces.
        let sharded_options = ShardedOptions {
            shards: options.shards,
            threads: options.threads,
            iterations: options.iterations,
            batch: options.batch,
            seed: options.churn_seed,
        };
        let session_config = SessionConfig::new()
            .engine_config(config)
            .maintenance(options.maintenance);
        let run = run_sharded(&graph, &workload, session_config, &sharded_options)
            .map_err(|e| format!("sharded: {e}"))?;
        eprintln!(
            "{:<12} {:>8.1} qps · {:>8.1} ms wall · {} shards · answers match the \
             unsharded reference exactly (pre- and post-churn)",
            run.engine, run.qps, run.wall_ms, options.shards
        );
        report.engines.push(run);
        print_summary(&report);
        if let Some(path) = &options.json {
            std::fs::write(path, report.to_json_string())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!("report written to {path}");
        }
        return check_baseline(&report, baseline.as_ref(), &options);
    }

    for name in &engine_names {
        // Each engine gets a fresh executor over the shared base graph —
        // churn mutations are per-executor versions, so every engine starts
        // from the identical dataset and applies the identical seeded mix.
        let session_config = SessionConfig::new()
            .engine_config(config)
            .maintenance(options.maintenance)
            .obs(options.obs)
            .engine(name);
        let executor: Arc<dyn QueryExecutor> = Arc::new(
            Session::from_config(Arc::clone(&graph), session_config).map_err(|e| e.to_string())?,
        );
        let run = match options.scenario.as_str() {
            "churn" => {
                run_churn(executor.as_ref(), &workload, &churn_options).map_err(|e| e.to_string())
            }
            "serve-net" => run_serve_net(&executor, &workload, &servenet_options),
            _ => run_engine(
                executor.as_ref(),
                &workload,
                options.threads,
                options.iterations,
            )
            .map_err(|e| e.to_string()),
        }
        .map_err(|e| format!("{name}: {e}"))?;
        if let Some(serve) = &run.serve {
            eprintln!(
                "{:<12} {:>8.1} qps · {:>8.1} ms wall · {} clients × {} reqs · \
                 p99 {:.2} ms · p999 {:.2} ms · shed {:.1}% · {} batches \
                 ({} coalesced) · sub lag {} epochs",
                run.engine,
                run.qps,
                run.wall_ms,
                serve.clients,
                serve.requests / serve.clients.max(1),
                serve.p99_ms,
                serve.p999_ms,
                serve.shed_rate * 100.0,
                serve.mutation_batches,
                serve.coalesced_mutations,
                serve.subscription_lag_epochs,
            );
            if !serve.obs {
                eprintln!(
                    "{:<12} telemetry histograms/spans OFF (overhead A/B lane)",
                    run.engine
                );
            }
            report.engines.push(run);
            continue;
        }
        match &run.churn {
            Some(churn) => eprintln!(
                "{:<12} {:>8.1} qps · {:>8.1} ms wall · {} epochs · {} mutations · \
                 {} maintained · {} invalidations · {} compactions",
                run.engine,
                run.qps,
                run.wall_ms,
                churn.final_epoch,
                churn.total_mutations,
                churn.total_maintained.unwrap_or(0),
                churn.total_invalidations,
                churn.total_compactions
            ),
            None => eprintln!(
                "{:<12} {:>8.1} qps · {:>8.1} ms wall · cache {} hits / {} misses",
                run.engine, run.qps, run.wall_ms, run.cache_hits, run.cache_misses
            ),
        }
        report.engines.push(run);
    }

    print_summary(&report);

    if let Some(path) = &options.json {
        std::fs::write(path, report.to_json_string())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("report written to {path}");
    }

    check_baseline(&report, baseline.as_ref(), &options)
}

/// The `--scenario cyclic` lane: builds the triangle-heavy instance, runs
/// the verified wco-vs-triangulation comparison, and reports both engines.
fn run_cyclic_scenario(options: &Options, baseline: Option<&BenchReport>) -> Result<bool, String> {
    let graph = Arc::new(cyclic_dataset(options.size, options.store, DATASET_SEED));
    eprintln!(
        "cyclic dataset {}: {} triples, {} predicates · {} store · {} threads × {} iterations",
        options.size.name(),
        graph.triple_count(),
        graph.predicate_count(),
        options.store.name(),
        options.threads,
        options.iterations
    );
    let workload = cyclic_workload(&graph).map_err(|e| format!("workload does not build: {e}"))?;

    let config = EngineConfig::default()
        .with_threads(options.threads)
        .with_store(options.store);
    let cyclic_options = CyclicOptions {
        threads: options.threads,
        iterations: options.iterations,
        batch: options.batch,
        seed: options.churn_seed,
    };
    let (wco, triangulation) = run_cyclic(&graph, &workload, config, &cyclic_options)
        .map_err(|e| format!("cyclic: {e}"))?;
    for run in [&wco, &triangulation] {
        eprintln!(
            "{:<13} {:>8.1} qps · {:>8.1} ms wall · cache {} hits / {} misses",
            run.engine, run.qps, run.wall_ms, run.cache_hits, run.cache_misses
        );
    }
    eprintln!(
        "wco / triangulation speedup: {:.2}x · answers bit-identical (pre- and post-churn)",
        wco.qps / triangulation.qps.max(1e-9)
    );

    let report = BenchReport {
        schema_version: SCHEMA_VERSION,
        dataset: options.size.name().to_owned(),
        store: options.store.name().to_owned(),
        scenario: options.scenario.clone(),
        triples: graph.triple_count() as u64,
        threads: options.threads,
        iterations: options.iterations,
        workload: "cyclic".to_owned(),
        engines: vec![wco, triangulation],
    };
    print_summary(&report);
    if let Some(path) = &options.json {
        std::fs::write(path, report.to_json_string())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("report written to {path}");
    }
    check_baseline(&report, baseline, options)
}

/// Compares the finished report against the optional baseline; `Ok(false)`
/// means regressions were found (exit code 1).
fn check_baseline(
    report: &BenchReport,
    baseline: Option<&BenchReport>,
    options: &Options,
) -> Result<bool, String> {
    let Some(baseline) = baseline else {
        return Ok(true);
    };
    let path = options.baseline.as_deref().unwrap_or("<baseline>");
    let tolerance = options.tolerance.unwrap_or(DEFAULT_TOLERANCE);
    let regressions = compare(report, baseline, tolerance);
    if regressions.is_empty() {
        eprintln!(
            "no regression against {path} (tolerance {:.0}%)",
            tolerance * 100.0
        );
        Ok(true)
    } else {
        eprintln!("{} regression(s) against {path}:", regressions.len());
        for r in &regressions {
            eprintln!("  {r}");
        }
        Ok(false)
    }
}

/// Latency/QPS slack applied when `--baseline` is given without `--tolerance`.
const DEFAULT_TOLERANCE: f64 = 0.15;

fn print_summary(report: &BenchReport) {
    if report.scenario == "serve-net" {
        println!(
            "{:<12} {:>7} {:>8} {:>8} {:>7} {:>8} {:>8} {:>8} {:>8} {:>7} {:>8} {:>9} {:>7}",
            "engine",
            "clients",
            "requests",
            "queries",
            "writes",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "p999 ms",
            "shed%",
            "batches",
            "coalesced",
            "lag"
        );
        for engine in &report.engines {
            let Some(s) = &engine.serve else { continue };
            println!(
                "{:<12} {:>7} {:>8} {:>8} {:>7} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>7.1} {:>8} {:>9} {:>7}",
                engine.engine,
                s.clients,
                s.requests,
                s.queries,
                s.mutations,
                s.p50_ms,
                s.p95_ms,
                s.p99_ms,
                s.p999_ms,
                s.shed_rate * 100.0,
                s.mutation_batches,
                s.coalesced_mutations,
                s.subscription_lag_epochs,
            );
        }
        return;
    }
    if report.scenario == "churn" {
        println!(
            "{:<12} {:>6} {:>9} {:>8} {:>8} {:>8} {:>10} {:>9} {:>9} {:>12} {:>9} {:>9}",
            "engine",
            "epoch",
            "qps",
            "+triples",
            "-triples",
            "invalid.",
            "maintained",
            "maint.µs",
            "frontier",
            "compactions",
            "hits",
            "misses"
        );
        for engine in &report.engines {
            for e in engine.churn.iter().flat_map(|c| c.epochs.iter()) {
                println!(
                    "{:<12} {:>6} {:>9.1} {:>8} {:>8} {:>8} {:>10} {:>9} {:>9} {:>12} {:>9} {:>9}",
                    engine.engine,
                    e.epoch,
                    e.qps,
                    e.inserted,
                    e.removed,
                    e.invalidations,
                    e.maintained,
                    e.maintenance_us,
                    e.frontier_nodes,
                    e.compactions,
                    e.cache_hits,
                    e.cache_misses,
                );
            }
            println!(
                "{:<12} {:<6} {:>9.1} qps over {} queries",
                engine.engine, "all", engine.qps, engine.total_queries
            );
            if let Some(t) = engine.churn.as_ref().and_then(|c| c.topk.as_ref()) {
                println!(
                    "{:<12} {:<6} limit {} · prefix p50 {:.1} µs / p99 {:.1} µs \
                     over {} serves · full p50 {:.1} µs / p99 {:.1} µs over {} \
                     serves · {} refills · {} fallbacks",
                    engine.engine,
                    "topk",
                    t.limit,
                    t.prefix_p50_us,
                    t.prefix_p99_us,
                    t.prefix_serves,
                    t.full_p50_us,
                    t.full_p99_us,
                    t.full_serves,
                    t.prefix_refills,
                    t.prefix_fallbacks,
                );
            }
        }
        return;
    }
    println!(
        "{:<12} {:<7} {:>9} {:>9} {:>9} {:>9} {:>12} {:>9}",
        "engine", "query", "p50 ms", "p95 ms", "p99 ms", "|AG|", "|Emb|", "AG/Emb"
    );
    for engine in &report.engines {
        for q in &engine.queries {
            println!(
                "{:<12} {:<7} {:>9.3} {:>9.3} {:>9.3} {:>9} {:>12} {:>9}",
                engine.engine,
                q.name,
                q.p50_ms,
                q.p95_ms,
                q.p99_ms,
                q.answer_graph_edges
                    .map_or("-".to_owned(), |v| v.to_string()),
                q.embeddings,
                q.ag_over_embeddings
                    .map_or("-".to_owned(), |v| format!("{v:.4}")),
            );
        }
        if !engine.queries.is_empty() {
            // Label the two defactorization columns explicitly: the wall
            // clock is what a client waits; the worker-cpu sum is what the
            // parallel phase-two defactorizer actually burned across its
            // threads (equal when sequential, larger when parallel).
            let n = engine.queries.len() as f64;
            let mean = |pick: fn(&PhaseBreakdown) -> f64| {
                engine.queries.iter().map(|q| pick(&q.phases)).sum::<f64>() / n
            };
            println!(
                "{:<12} {:<7} plan {:.3} · ag {:.3} · burnback {:.3} · \
                 defac {:.3} wall / {:.3} worker-cpu · exec {:.3} (mean ms)",
                engine.engine,
                "phases",
                mean(|p| p.planning_ms),
                mean(|p| p.answer_graph_ms),
                mean(|p| p.edge_burnback_ms),
                mean(|p| p.defactorization_ms),
                mean(|p| p.defactorization_cpu_ms),
                mean(|p| p.execution_ms),
            );
        }
        println!(
            "{:<12} {:<7} {:>9.1} qps over {} queries",
            engine.engine, "all", engine.qps, engine.total_queries
        );
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        parse_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn store_flag_parses() {
        assert_eq!(parse(&[]).unwrap().store, StoreKind::Csr);
        assert_eq!(parse(&["--store", "map"]).unwrap().store, StoreKind::Map);
        assert_eq!(
            parse(&["--store", "delta"]).unwrap().store,
            StoreKind::Delta
        );
        let err = parse(&["--store", "btree"]).unwrap_err();
        assert!(err.contains("csr") && err.contains("map"), "{err}");
    }

    #[test]
    fn churn_flags_parse_with_sane_defaults() {
        let options = parse(&[]).unwrap();
        assert_eq!(options.scenario, "serve");
        assert_eq!(options.epochs, 4);
        assert_eq!(options.batch, 64);
        assert!((options.insert_fraction - 0.6).abs() < 1e-9);

        let options = parse(&[
            "--scenario",
            "churn",
            "--epochs",
            "2",
            "--batch",
            "10",
            "--insert-fraction",
            "0.5",
            "--churn-seed",
            "99",
        ])
        .unwrap();
        assert_eq!(options.scenario, "churn");
        assert_eq!(
            (options.epochs, options.batch, options.churn_seed),
            (2, 10, 99)
        );

        assert!(parse(&["--scenario", "replay"]).is_err());
        assert!(parse(&["--epochs", "0"]).is_err());
        assert!(
            parse(&[]).unwrap().maintenance,
            "incremental is the default"
        );
        assert!(
            parse(&["--maintenance", "incremental"])
                .unwrap()
                .maintenance
        );
        assert!(!parse(&["--maintenance", "reeval"]).unwrap().maintenance);
        let err = parse(&["--maintenance", "magic"]).unwrap_err();
        assert!(
            err.contains("incremental") && err.contains("reeval"),
            "{err}"
        );
        assert!(parse(&["--batch", "0"]).is_err());
        assert!(parse(&["--insert-fraction", "1.5"]).is_err());

        assert_eq!(parse(&[]).unwrap().compaction_threshold, None);
        assert_eq!(
            parse(&["--compaction-threshold", "0.05"])
                .unwrap()
                .compaction_threshold,
            Some(0.05)
        );
        assert!(parse(&["--compaction-threshold", "-1"]).is_err());

        assert_eq!(parse(&[]).unwrap().limit, 0, "unlimited by default");
        assert_eq!(
            parse(&["--scenario", "churn", "--limit", "8"])
                .unwrap()
                .limit,
            8
        );
        assert!(parse(&["--scenario", "churn", "--limit", "0"]).is_err());
        assert!(
            parse(&["--limit", "8"]).is_err(),
            "--limit is a churn-lane knob"
        );
    }

    #[test]
    fn serve_net_flags_parse_with_sane_defaults() {
        let options = parse(&[]).unwrap();
        assert_eq!(options.clients, 4);
        assert_eq!(options.requests, 100);
        assert!((options.write_fraction - 0.2).abs() < 1e-9);
        assert_eq!(options.queue_depth, 128);

        let options = parse(&[
            "--scenario",
            "serve-net",
            "--clients",
            "2",
            "--requests",
            "25",
            "--write-fraction",
            "0.5",
            "--queue-depth",
            "0",
        ])
        .unwrap();
        assert_eq!(options.scenario, "serve-net");
        assert_eq!(
            (options.clients, options.requests, options.queue_depth),
            (2, 25, 0)
        );
        assert!((options.write_fraction - 0.5).abs() < 1e-9);

        assert!(parse(&["--clients", "0"]).is_err());
        assert!(parse(&["--requests", "0"]).is_err());
        assert!(parse(&["--write-fraction", "1.5"]).is_err());
        assert!(parse(&["--write-fraction", "-0.1"]).is_err());
        assert!(parse(&["--queue-depth", "-1"]).is_err());
    }

    #[test]
    fn sharded_flags_parse_and_validate_before_any_work() {
        let options = parse(&[]).unwrap();
        assert_eq!(options.shards, 2, "the sharded default is 2 partitions");

        let options = parse(&["--scenario", "sharded", "--shards", "4"]).unwrap();
        assert_eq!(options.scenario, "sharded");
        assert_eq!(options.shards, 4);

        // Invalid shard counts are usage errors (exit 2), rejected at parse
        // time — matching the --baseline/--tolerance fail-fast precedent.
        let err = parse(&["--shards", "0"]).unwrap_err();
        assert!(err.contains("--shards"), "{err}");
        let err = parse(&["--shards", "two"]).unwrap_err();
        assert!(err.contains("--shards"), "{err}");
        assert!(parse(&["--shards"]).is_err(), "a value is required");
    }

    #[test]
    fn obs_and_metrics_out_flags_parse() {
        assert!(parse(&[]).unwrap().obs, "telemetry defaults to on");
        assert!(parse(&["--obs", "on"]).unwrap().obs);
        assert!(!parse(&["--obs", "off"]).unwrap().obs);
        assert!(parse(&["--obs", "maybe"]).is_err());

        let options = parse(&["--scenario", "serve-net", "--metrics-out", "m.txt"]).unwrap();
        assert_eq!(options.metrics_out.as_deref(), Some("m.txt"));
        // The scrape rides on the serve-net server; elsewhere it is a
        // usage error, rejected before any benchmark work starts.
        let err = parse(&["--metrics-out", "m.txt"]).unwrap_err();
        assert!(err.contains("serve-net"), "{err}");
    }

    #[test]
    fn tolerance_without_baseline_is_a_usage_error() {
        let err = parse(&["--tolerance", "30%"]).unwrap_err();
        assert!(err.contains("--baseline"), "{err}");
        assert!(parse(&["--baseline", "x.json", "--tolerance", "30%"]).is_ok());
        // Malformed tolerances are still rejected at parse time.
        assert!(parse(&["--baseline", "x.json", "--tolerance", "abc"]).is_err());
    }

    #[test]
    fn missing_baseline_file_fails_before_the_benchmark_runs() {
        let options = parse(&["--baseline", "/nonexistent/definitely-not-here.json"]).unwrap();
        let err = load_baseline(&options).unwrap_err();
        assert!(err.contains("cannot read baseline"), "{err}");
    }

    #[test]
    fn unparsable_baseline_fails_with_a_clear_message() {
        let path = std::env::temp_dir().join("wfbench_test_bad_baseline.json");
        std::fs::write(&path, "{ not json").unwrap();
        let options = parse(&["--baseline", path.to_str().unwrap()]).unwrap();
        let err = load_baseline(&options).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.contains("cannot parse baseline"), "{err}");
    }
}

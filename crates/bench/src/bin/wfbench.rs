//! `wfbench` — the concurrent closed-loop benchmark driver with
//! machine-readable output and baseline regression checking.
//!
//! ```text
//! wfbench [options]
//!
//! options:
//!   --size tiny|small|benchmark|large   dataset size (default: WIREFRAME_BENCH_SIZE or small)
//!   --threads <N>                 closed-loop driver threads (default: auto, capped at 8);
//!                                 also passed to the wireframe engine's parallel
//!                                 phase-two defactorizer
//!   --iterations <N>              workload passes per thread (default 5)
//!   --engines <a,b,…>             engines to measure (default: every registered engine)
//!   --workload full|table1|chains|stars   query mix (default full = all 20)
//!   --store csr|map               graph storage backend to index the dataset with
//!                                 (default csr)
//!   --edge-burnback               enable triangulation + edge burnback (wireframe only)
//!   --json <path>                 write the BENCH_*.json report here
//!   --baseline <path>             compare against a previous report …
//!   --tolerance <P%>              … allowing P% slack on latency/QPS (default 15%)
//!
//! exit codes: 0 ok · 1 regression against the baseline · 2 usage or runtime error
//! ```
//!
//! The JSON schema is documented in `wireframe_bench::report` and in the
//! README's Benchmarking section. Counts (|AG|, |Embeddings|) must match the
//! baseline exactly; latency and QPS regress only beyond the tolerance.

use std::process::ExitCode;
use std::sync::Arc;

use wireframe::{core::auto_threads, EngineConfig, Session, StoreKind};
use wireframe_bench::driver::run_engine;
use wireframe_bench::report::{compare, parse_tolerance, BenchReport, SCHEMA_VERSION};
use wireframe_bench::{build_dataset_with_store, DatasetSize};
use wireframe_datagen::{chain_queries, full_workload, star_queries, table1_queries};

#[derive(Debug)]
struct Options {
    size: DatasetSize,
    threads: usize,
    iterations: usize,
    engines: Option<Vec<String>>,
    workload: String,
    store: StoreKind,
    edge_burnback: bool,
    json: Option<String>,
    baseline: Option<String>,
    tolerance: Option<f64>,
}

fn usage() -> &'static str {
    "usage: wfbench [--size tiny|small|benchmark|large] [--threads N] [--iterations N] \
     [--engines a,b,…] [--workload full|table1|chains|stars] [--store csr|map] \
     [--edge-burnback] [--json PATH] [--baseline PATH [--tolerance P%]]"
}

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Options, String> {
    // Resolved lazily after the flags: an explicit --size must win before
    // the environment variable gets a chance to reject the process.
    let mut size: Option<DatasetSize> = None;
    let mut options = Options {
        size: DatasetSize::Small,
        threads: auto_threads(),
        iterations: 5,
        engines: None,
        workload: "full".to_owned(),
        store: StoreKind::default(),
        edge_burnback: false,
        json: None,
        baseline: None,
        tolerance: None,
    };
    let value = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--size" => size = Some(DatasetSize::parse(&value(&mut args, "--size")?)?),
            "--threads" => {
                options.threads = value(&mut args, "--threads")?
                    .parse()
                    .map_err(|_| "--threads must be a positive integer".to_owned())?;
                if options.threads == 0 {
                    return Err("--threads must be at least 1".to_owned());
                }
            }
            "--iterations" => {
                options.iterations = value(&mut args, "--iterations")?
                    .parse()
                    .map_err(|_| "--iterations must be a positive integer".to_owned())?;
                if options.iterations == 0 {
                    return Err("--iterations must be at least 1".to_owned());
                }
            }
            "--engines" => {
                options.engines = Some(
                    value(&mut args, "--engines")?
                        .split(',')
                        .map(|s| s.trim().to_owned())
                        .filter(|s| !s.is_empty())
                        .collect(),
                )
            }
            "--workload" => {
                let name = value(&mut args, "--workload")?;
                if !["full", "table1", "chains", "stars"].contains(&name.as_str()) {
                    return Err(format!(
                        "unknown workload {name:?} (accepted: full, table1, chains, stars)"
                    ));
                }
                options.workload = name;
            }
            "--store" => options.store = StoreKind::parse(&value(&mut args, "--store")?)?,
            "--edge-burnback" => options.edge_burnback = true,
            "--json" => options.json = Some(value(&mut args, "--json")?),
            "--baseline" => options.baseline = Some(value(&mut args, "--baseline")?),
            "--tolerance" => {
                options.tolerance = Some(parse_tolerance(&value(&mut args, "--tolerance")?)?)
            }
            "--help" | "-h" => return Err(usage().to_owned()),
            other => return Err(format!("unknown option {other}\n{}", usage())),
        }
    }
    if options.tolerance.is_some() && options.baseline.is_none() {
        return Err("--tolerance only applies together with --baseline".to_owned());
    }
    options.size = size.unwrap_or_else(DatasetSize::from_env);
    Ok(options)
}

/// Reads and parses the `--baseline` report up front, so a bad path or file
/// fails fast (exit 2) instead of after the whole benchmark has run.
fn load_baseline(
    options: &Options,
) -> Result<Option<wireframe_bench::report::BenchReport>, String> {
    let Some(path) = &options.baseline else {
        return Ok(None);
    };
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    BenchReport::from_json(&text)
        .map(Some)
        .map_err(|e| format!("cannot parse baseline {path}: {e}"))
}

fn run() -> Result<bool, String> {
    let options = parse_args(std::env::args().skip(1))?;
    let baseline = load_baseline(&options)?;

    let graph = Arc::new(build_dataset_with_store(options.size, options.store));
    eprintln!(
        "dataset {}: {} triples, {} predicates · {} store · {} threads × {} iterations",
        options.size.name(),
        graph.triple_count(),
        graph.predicate_count(),
        options.store.name(),
        options.threads,
        options.iterations
    );

    let workload = match options.workload.as_str() {
        "table1" => table1_queries(&graph),
        "chains" => chain_queries(&graph),
        "stars" => star_queries(&graph),
        _ => full_workload(&graph),
    }
    .map_err(|e| format!("workload does not build: {e}"))?;

    let mut config = EngineConfig::default()
        .with_threads(options.threads)
        .with_store(options.store);
    if options.edge_burnback {
        config = config.with_edge_burnback();
    }

    let registry = wireframe::default_registry();
    let engine_names: Vec<String> = match &options.engines {
        Some(names) => names.clone(),
        None => registry.names().iter().map(|&n| n.to_owned()).collect(),
    };

    let mut report = BenchReport {
        schema_version: SCHEMA_VERSION,
        dataset: options.size.name().to_owned(),
        store: options.store.name().to_owned(),
        triples: graph.triple_count() as u64,
        threads: options.threads,
        iterations: options.iterations,
        workload: options.workload.clone(),
        engines: Vec::new(),
    };

    for name in &engine_names {
        let session = Session::shared(Arc::clone(&graph))
            .with_config(config)
            .with_engine(name)
            .map_err(|e| e.to_string())?;
        let run = run_engine(&session, &workload, options.threads, options.iterations)
            .map_err(|e| format!("{name}: {e}"))?;
        eprintln!(
            "{:<12} {:>8.1} qps · {:>8.1} ms wall · cache {} hits / {} misses",
            run.engine, run.qps, run.wall_ms, run.cache_hits, run.cache_misses
        );
        report.engines.push(run);
    }

    print_summary(&report);

    if let Some(path) = &options.json {
        std::fs::write(path, report.to_json_string())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("report written to {path}");
    }

    if let Some(baseline) = &baseline {
        let path = options.baseline.as_deref().unwrap_or("<baseline>");
        let tolerance = options.tolerance.unwrap_or(DEFAULT_TOLERANCE);
        let regressions = compare(&report, baseline, tolerance);
        if regressions.is_empty() {
            eprintln!(
                "no regression against {path} (tolerance {:.0}%)",
                tolerance * 100.0
            );
        } else {
            eprintln!("{} regression(s) against {path}:", regressions.len());
            for r in &regressions {
                eprintln!("  {r}");
            }
            return Ok(false);
        }
    }
    Ok(true)
}

/// Latency/QPS slack applied when `--baseline` is given without `--tolerance`.
const DEFAULT_TOLERANCE: f64 = 0.15;

fn print_summary(report: &BenchReport) {
    println!(
        "{:<12} {:<7} {:>9} {:>9} {:>9} {:>9} {:>12} {:>9}",
        "engine", "query", "p50 ms", "p95 ms", "p99 ms", "|AG|", "|Emb|", "AG/Emb"
    );
    for engine in &report.engines {
        for q in &engine.queries {
            println!(
                "{:<12} {:<7} {:>9.3} {:>9.3} {:>9.3} {:>9} {:>12} {:>9}",
                engine.engine,
                q.name,
                q.p50_ms,
                q.p95_ms,
                q.p99_ms,
                q.answer_graph_edges
                    .map_or("-".to_owned(), |v| v.to_string()),
                q.embeddings,
                q.ag_over_embeddings
                    .map_or("-".to_owned(), |v| format!("{v:.4}")),
            );
        }
        println!(
            "{:<12} {:<7} {:>9.1} qps over {} queries",
            engine.engine, "all", engine.qps, engine.total_queries
        );
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        parse_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn store_flag_parses() {
        assert_eq!(parse(&[]).unwrap().store, StoreKind::Csr);
        assert_eq!(parse(&["--store", "map"]).unwrap().store, StoreKind::Map);
        let err = parse(&["--store", "btree"]).unwrap_err();
        assert!(err.contains("csr") && err.contains("map"), "{err}");
    }

    #[test]
    fn tolerance_without_baseline_is_a_usage_error() {
        let err = parse(&["--tolerance", "30%"]).unwrap_err();
        assert!(err.contains("--baseline"), "{err}");
        assert!(parse(&["--baseline", "x.json", "--tolerance", "30%"]).is_ok());
        // Malformed tolerances are still rejected at parse time.
        assert!(parse(&["--baseline", "x.json", "--tolerance", "abc"]).is_err());
    }

    #[test]
    fn missing_baseline_file_fails_before_the_benchmark_runs() {
        let options = parse(&["--baseline", "/nonexistent/definitely-not-here.json"]).unwrap();
        let err = load_baseline(&options).unwrap_err();
        assert!(err.contains("cannot read baseline"), "{err}");
    }

    #[test]
    fn unparsable_baseline_fails_with_a_clear_message() {
        let path = std::env::temp_dir().join("wfbench_test_bad_baseline.json");
        std::fs::write(&path, "{ not json").unwrap();
        let options = parse(&["--baseline", path.to_str().unwrap()]).unwrap();
        let err = load_baseline(&options).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.contains("cannot parse baseline"), "{err}");
    }
}
